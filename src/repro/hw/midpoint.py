"""The SAMC decoder's midpoint arithmetic (Section 3, Figure 5).

The paper's serial decoder produces one bit per midpoint computation::

    mid = min + (max - min - 1) * p
    bit = (val >= mid);  min/max <- mid

and is sped up by computing *all* midpoints for the next 4 bits in
parallel: each of the 15 nodes of a depth-4 decision tree has a midpoint
that is a function only of the initial interval (m0, M0) and the Markov
probabilities along its prefix — so 15 multiplier/adder units plus 15
comparators decode a nibble per cycle.

This module implements both forms over the same 24-bit fixed-point
arithmetic and (see the tests) proves them equivalent, plus the
shift-only variant used when probabilities are constrained to powers of
1/2 ("to avoid the multiplication … only shifts are required").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

#: The decoder's interval registers are 24 bits wide, per the paper.
INTERVAL_BITS = 24
INTERVAL_MAX = 1 << INTERVAL_BITS

#: Probabilities are 16-bit fixed-point fractions of PROB_ONE.
PROB_BITS = 16
PROB_ONE = 1 << PROB_BITS

#: A prediction source: bit-prefix (as a tuple of bits) -> P(next bit = 0).
ProbLookup = Callable[[Tuple[int, ...]], int]


def serial_midpoint(low: int, high: int, p0: int) -> int:
    """One midpoint: ``min + (max - min - 1) * p0``, clamped inside.

    The clamping (lines 10-11 of the paper's pseudocode) keeps both
    sub-intervals non-empty even for saturated probabilities.
    """
    mid = low + (((high - low - 1) * p0) >> PROB_BITS)
    if mid <= low:
        mid = low + 1
    if mid >= high - 1:
        mid = high - 1
    return mid


def serial_decode(
    val: int, nbits: int, prob: ProbLookup, low: int = 0, high: int = INTERVAL_MAX
) -> Tuple[List[int], int, int]:
    """Decode ``nbits`` bits one midpoint at a time (the slow reference).

    Returns (bits, final_low, final_high).
    """
    bits: List[int] = []
    for _ in range(nbits):
        mid = serial_midpoint(low, high, prob(tuple(bits)))
        if val >= mid:
            bits.append(1)
            low = mid
        else:
            bits.append(0)
            high = mid
    return bits, low, high


def compute_midpoints(
    nbits: int, prob: ProbLookup, low: int = 0, high: int = INTERVAL_MAX
) -> Dict[Tuple[int, ...], int]:
    """All 2**nbits - 1 midpoints of the decode tree, keyed by prefix.

    Every value depends only on (low, high) and the probabilities — no
    serial dependency on ``val`` — which is what lets the hardware
    evaluate them concurrently.  For the paper's nibble decoder,
    ``nbits=4`` gives the 15 midpoints of Figure 5.
    """
    midpoints: Dict[Tuple[int, ...], int] = {}

    def descend(prefix: Tuple[int, ...], lo: int, hi: int) -> None:
        if len(prefix) >= nbits:
            return
        mid = serial_midpoint(lo, hi, prob(prefix))
        midpoints[prefix] = mid
        descend(prefix + (0,), lo, mid)
        descend(prefix + (1,), mid, hi)

    descend((), low, high)
    return midpoints


def parallel_decode(
    val: int,
    nbits: int,
    prob: ProbLookup,
    low: int = 0,
    high: int = INTERVAL_MAX,
) -> Tuple[List[int], int, int]:
    """Decode ``nbits`` bits using precomputed midpoints + comparators.

    Functionally identical to :func:`serial_decode`; structured the way
    the hardware works: midpoint computation first (parallelisable),
    then a comparator chain selecting the path.
    """
    midpoints = compute_midpoints(nbits, prob, low, high)
    bits: List[int] = []
    lo, hi = low, high
    for _ in range(nbits):
        mid = midpoints[tuple(bits)]
        if val >= mid:
            bits.append(1)
            lo = mid
        else:
            bits.append(0)
            hi = mid
    return bits, lo, hi


def shift_only_midpoint(low: int, high: int, exponent: int, zero_is_lps: bool) -> int:
    """Midpoint when the LPS probability is 2**-exponent (no multiplier).

    If 0 is the less probable symbol, its share of the interval is a
    right shift of the width; otherwise the shift computes the 1-side
    and a subtraction places the midpoint ("only a shift is required,
    otherwise a shift and a subtraction").
    """
    width = high - low - 1
    lps_share = width >> exponent
    mid = low + lps_share if zero_is_lps else high - 1 - lps_share
    if mid <= low:
        mid = low + 1
    if mid >= high - 1:
        mid = high - 1
    return mid
