"""CLB — the Cache Line Address Lookaside Buffer.

"Since accessing the LAT will increase the cache refill time a CLB
(Cache Line Address Lookaside Buffer) can be used which is essentially
identical to a TLB."  It caches recently used LAT *groups* (one compacted
LAT entry covers a group of blocks), so most refills resolve the
compressed address without an extra main-memory access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class CLBStats:
    lookups: int = 0
    hits: int = 0

    @property
    def hit_ratio(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class CLB:
    """Fully associative LRU buffer of LAT entries."""

    def __init__(self, entries: int = 16, group_size: int = 8) -> None:
        if entries < 1:
            raise ValueError("CLB needs at least one entry")
        self.entries = entries
        self.group_size = group_size
        self._groups: List[int] = []  # LRU order, most recent last
        self.stats = CLBStats()

    def lookup(self, block_index: int) -> bool:
        """True when the block's LAT group is buffered (hit)."""
        group = block_index // self.group_size
        self.stats.lookups += 1
        if group in self._groups:
            self._groups.remove(group)
            self._groups.append(group)
            self.stats.hits += 1
            return True
        self._groups.append(group)
        if len(self._groups) > self.entries:
            self._groups.pop(0)
        return False

    def flush(self) -> None:
        self._groups.clear()
