"""Set-associative instruction cache with LRU replacement.

In the paper's memory organisation (Figure 1) the I-cache doubles as the
*decompression buffer*: it holds recently used blocks in uncompressed
form, and only a miss invokes the decompression engine.  The simulator
therefore only needs hit/miss behaviour, not data storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class CacheStats:
    """Access counters for one simulation run."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class InstructionCache:
    """A set-associative cache indexed by byte address.

    Parameters use the usual triple: total ``size_bytes``, ``block_size``
    (the paper's experiments fix 32 bytes), and ``associativity``.
    """

    def __init__(
        self,
        size_bytes: int = 4096,
        block_size: int = 32,
        associativity: int = 2,
    ) -> None:
        if size_bytes % (block_size * associativity) != 0:
            raise ValueError(
                "cache size must be a multiple of block_size * associativity"
            )
        self.block_size = block_size
        self.associativity = associativity
        self.n_sets = size_bytes // (block_size * associativity)
        #: set index -> list of tags, most recently used last.
        self._sets: Dict[int, List[int]] = {}
        self.stats = CacheStats()

    def _locate(self, address: int) -> tuple:
        block = address // self.block_size
        return block % self.n_sets, block // self.n_sets

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit, False on miss (fills)."""
        set_index, tag = self._locate(address)
        ways = self._sets.setdefault(set_index, [])
        self.stats.accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        ways.append(tag)
        if len(ways) > self.associativity:
            ways.pop(0)
        return False

    def contains(self, address: int) -> bool:
        """Non-mutating lookup (no stats, no LRU update)."""
        set_index, tag = self._locate(address)
        return tag in self._sets.get(set_index, [])

    def flush(self) -> None:
        """Invalidate all lines (stats are kept)."""
        self._sets.clear()

    def block_index(self, address: int) -> int:
        """Program block number an address falls in."""
        return address // self.block_size
