"""The Wolfe/Chanin decompress-on-miss memory system (Figure 1)."""

from repro.memory.cache import CacheStats, InstructionCache
from repro.memory.clb import CLB, CLBStats
from repro.memory.refill import (
    DECOMPRESS_BITS_PER_CYCLE,
    RefillEngine,
    RefillTiming,
)
from repro.memory.fetchsim import (
    CompressedFetchPort,
    ExecutionResult,
    run_compressed,
)
from repro.memory.system import (
    CompressedMemorySystem,
    SimulationResult,
    simulate,
)
from repro.memory.trace import generate_trace

__all__ = [
    "CLB",
    "CLBStats",
    "CacheStats",
    "CompressedFetchPort",
    "CompressedMemorySystem",
    "ExecutionResult",
    "run_compressed",
    "DECOMPRESS_BITS_PER_CYCLE",
    "InstructionCache",
    "RefillEngine",
    "RefillTiming",
    "SimulationResult",
    "generate_trace",
    "simulate",
]
