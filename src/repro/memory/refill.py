"""The cache refill engine: timing model for decompress-on-miss.

A miss in the Wolfe/Chanin organisation costs, in order:

1. a CLB lookup — a miss adds a main-memory access for the LAT entry;
2. reading the compressed line from main memory (fewer bus beats than an
   uncompressed line: compression *helps* refill bandwidth);
3. running the line through the decompressor.

Per-algorithm decompression throughputs follow the paper's hardware
sketches: the SAMC decoder produces 4 bits per cycle (15 parallel
midpoint units, Section 3); the SADC decoder emits roughly one
instruction every two cycles (dictionary lookup + instruction
generation, Figure 6); byte-Huffman decodes a byte per cycle; an
uncompressed system has no decompression stage at all.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Decompressor throughput models: decompressed-bits per cycle.
DECOMPRESS_BITS_PER_CYCLE = {
    "uncompressed": float("inf"),
    "SAMC": 4.0,
    "SADC": 16.0,  # ~one 32-bit instruction per 2 cycles
    "byte-huffman": 8.0,
}


@dataclass(frozen=True)
class RefillTiming:
    """Main-memory and bus parameters (cycles)."""

    memory_latency: int = 30  # first-word access
    bus_bytes_per_cycle: int = 4
    clb_lookup: int = 1

    def transfer_cycles(self, nbytes: int) -> int:
        """Burst-transfer time for ``nbytes`` from main memory."""
        return (nbytes + self.bus_bytes_per_cycle - 1) // self.bus_bytes_per_cycle


class RefillEngine:
    """Computes the miss penalty for one block refill."""

    def __init__(
        self,
        algorithm: str = "uncompressed",
        timing: RefillTiming = RefillTiming(),
    ) -> None:
        if algorithm not in DECOMPRESS_BITS_PER_CYCLE:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose from "
                f"{sorted(DECOMPRESS_BITS_PER_CYCLE)}"
            )
        self.algorithm = algorithm
        self.timing = timing

    def decompression_cycles(self, decompressed_bytes: int) -> int:
        """Cycles the decompressor needs for one block."""
        throughput = DECOMPRESS_BITS_PER_CYCLE[self.algorithm]
        if throughput == float("inf"):
            return 0
        return int(-(-8 * decompressed_bytes // throughput))  # ceil

    def refill_cycles(
        self,
        compressed_bytes: int,
        decompressed_bytes: int,
        clb_hit: bool = True,
    ) -> int:
        """Total miss penalty for one block."""
        cycles = self.timing.clb_lookup
        if not clb_hit:
            cycles += self.timing.memory_latency  # fetch the LAT entry
        cycles += self.timing.memory_latency
        cycles += self.timing.transfer_cycles(compressed_bytes)
        cycles += self.decompression_cycles(decompressed_bytes)
        return cycles
