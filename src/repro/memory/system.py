"""The complete decompress-on-miss memory system (Figure 1).

Ties together the I-cache, the CLB, and the refill engine, and runs an
instruction-fetch trace through them.  Comparing a compressed system's
cycle count against an uncompressed one quantifies the paper's central
architecture trade: memory savings vs. refill-time slowdown, governed by
the I-cache hit ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.lat import CompressedImage
from repro.memory.cache import CacheStats, InstructionCache
from repro.memory.clb import CLB, CLBStats
from repro.memory.refill import RefillEngine, RefillTiming
from repro.obs import get_recorder


@dataclass
class SimulationResult:
    """Outcome of one trace simulation."""

    algorithm: str
    cycles: int
    fetches: int
    cache: CacheStats
    clb: Optional[CLBStats]

    @property
    def cycles_per_fetch(self) -> float:
        if self.fetches == 0:
            return 0.0
        return self.cycles / self.fetches

    def slowdown_vs(self, baseline: "SimulationResult") -> float:
        """Cycle ratio against another run of the same trace."""
        if baseline.cycles == 0:
            return 1.0
        return self.cycles / baseline.cycles


class CompressedMemorySystem:
    """An I-cache + CLB + refill engine serving one program image.

    Pass ``image=None`` for the uncompressed baseline system (no CLB, no
    decompressor, full-size refills).
    """

    def __init__(
        self,
        code_size: int,
        image: Optional[CompressedImage] = None,
        cache_size: int = 4096,
        block_size: int = 32,
        associativity: int = 2,
        timing: RefillTiming = RefillTiming(),
        clb_entries: int = 16,
    ) -> None:
        if image is not None and image.block_size != block_size:
            raise ValueError(
                f"image block size {image.block_size} != cache block {block_size}"
            )
        self.code_size = code_size
        self.image = image
        self.cache = InstructionCache(cache_size, block_size, associativity)
        self.block_size = block_size
        algorithm = image.algorithm if image is not None else "uncompressed"
        self.engine = RefillEngine(algorithm, timing)
        self.clb = (
            CLB(clb_entries, image.compact_lat.group_size)
            if image is not None
            else None
        )

    def _block_sizes(self, block_index: int) -> tuple:
        """(compressed_bytes, decompressed_bytes) for one block."""
        if self.image is None:
            return self.block_size, self.block_size
        decompressed = min(
            self.block_size,
            self.code_size - block_index * self.block_size,
        )
        return len(self.image.blocks[block_index]), decompressed

    def run(self, trace: Iterable[int]) -> SimulationResult:
        """Simulate a fetch trace; each hit costs 1 cycle."""
        rec = get_recorder()
        if rec.enabled:
            cycles, fetches = self._run_instrumented(rec, trace)
        else:
            cycles, fetches = self._run_plain(trace)
        return SimulationResult(
            algorithm=self.engine.algorithm,
            cycles=cycles,
            fetches=fetches,
            cache=self.cache.stats,
            clb=self.clb.stats if self.clb is not None else None,
        )

    def _run_plain(self, trace: Iterable[int]) -> tuple:
        cycles = 0
        fetches = 0
        for address in trace:
            fetches += 1
            if self.cache.access(address):
                cycles += 1
                continue
            block_index = self.cache.block_index(address)
            clb_hit = True
            if self.clb is not None:
                clb_hit = self.clb.lookup(block_index)
            compressed, decompressed = self._block_sizes(block_index)
            cycles += 1 + self.engine.refill_cycles(
                compressed, decompressed, clb_hit
            )
        return cycles, fetches

    def _run_instrumented(self, rec, trace: Iterable[int]) -> tuple:
        """The same loop as :meth:`_run_plain`, plus refill-stall and
        CLB-hit accounting (counters and a stall-size histogram)."""
        cycles = 0
        fetches = 0
        hits = 0
        misses = 0
        clb_hits = 0
        clb_misses = 0
        stall_cycles = 0
        with rec.span("memory.run", algorithm=self.engine.algorithm):
            for address in trace:
                fetches += 1
                if self.cache.access(address):
                    cycles += 1
                    hits += 1
                    continue
                misses += 1
                block_index = self.cache.block_index(address)
                clb_hit = True
                if self.clb is not None:
                    clb_hit = self.clb.lookup(block_index)
                    if clb_hit:
                        clb_hits += 1
                    else:
                        clb_misses += 1
                compressed, decompressed = self._block_sizes(block_index)
                refill = self.engine.refill_cycles(
                    compressed, decompressed, clb_hit
                )
                stall_cycles += refill
                rec.observe("memory.refill_stall_cycles", refill)
                cycles += 1 + refill
        prefix = f"memory.{self.engine.algorithm}"
        rec.count(f"{prefix}.fetches", fetches)
        rec.count(f"{prefix}.cache_hits", hits)
        rec.count(f"{prefix}.cache_misses", misses)
        rec.count(f"{prefix}.refill_stall_cycles", stall_cycles)
        if self.clb is not None:
            rec.count(f"{prefix}.clb_hits", clb_hits)
            rec.count(f"{prefix}.clb_misses", clb_misses)
        return cycles, fetches


def simulate(
    code_size: int,
    trace: Sequence[int],
    image: Optional[CompressedImage] = None,
    **kwargs,
) -> SimulationResult:
    """One-call simulation of a trace against an (optional) image."""
    system = CompressedMemorySystem(code_size, image=image, **kwargs)
    return system.run(trace)
