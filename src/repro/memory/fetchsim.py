"""Execution-driven simulation: run a CPU out of compressed memory.

This closes the loop of Figure 1: a :class:`~repro.isa.mips.interp.MipsMachine`
executes a program, but every instruction fetch is served by the
compressed memory system — on an I-cache miss the refill engine locates
the block via the LAT/CLB and *actually decompresses it* with the real
codec, and the fetched word comes out of that decompressed block.  The
program's results are therefore computed through the entire compression
pipeline; a single wrong bit anywhere would corrupt execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import decompress_image
from repro.core.lat import CompressedImage
from repro.isa.mips.interp import MipsMachine
from repro.memory.cache import InstructionCache
from repro.memory.clb import CLB
from repro.memory.refill import RefillEngine, RefillTiming


@dataclass
class ExecutionResult:
    """Outcome of one execution-driven run."""

    instructions: int
    fetch_cycles: int
    hit_ratio: float
    clb_hit_ratio: float
    refills: int

    @property
    def fetch_cycles_per_instruction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.fetch_cycles / self.instructions


class CompressedFetchPort:
    """Serves instruction fetches from a compressed image.

    Installed as the machine's fetch hook.  Decompressed blocks are held
    in a dictionary standing in for the I-cache's data array; hit/miss
    and timing behaviour come from the cache/CLB/refill models.  Every
    refill runs the real block decompressor.
    """

    def __init__(
        self,
        image: CompressedImage,
        cache_size: int = 1024,
        associativity: int = 2,
        timing: RefillTiming = RefillTiming(),
        clb_entries: int = 8,
        decompress_block=None,
    ) -> None:
        self.image = image
        self.cache = InstructionCache(cache_size, image.block_size, associativity)
        self.clb = CLB(clb_entries, image.compact_lat.group_size)
        self.engine = RefillEngine(image.algorithm, timing)
        self.cycles = 0
        self.refills = 0
        self._lines: Dict[int, bytes] = {}
        self._decompress_block = decompress_block or self._default_decompress

    def _default_decompress(self, image: CompressedImage, index: int) -> bytes:
        from repro.core.samc import SamcCodec, samc_decompress  # noqa: F401
        from repro.core.sadc import MipsSadcCodec, X86SadcCodec

        if image.algorithm == "SAMC":
            codec = SamcCodec(
                word_bits=image.metadata["word_bits"],
                streams=[s.positions for s in image.metadata["streams"]],
                connect_bits=image.metadata["connect_bits"],
                block_size=image.block_size,
                probability_mode=image.metadata["probability_mode"],
            )
            return codec.decompress_block(image, index)
        if image.algorithm == "SADC" and image.metadata.get("isa") == "mips":
            return MipsSadcCodec(block_size=image.block_size).decompress_block(
                image, index
            )
        if image.algorithm == "byte-huffman":
            from repro.baselines.byte_huffman import ByteHuffmanCodec

            return ByteHuffmanCodec(image.block_size).decompress_block(
                image, index
            )
        raise ValueError(
            f"no block decompressor for {image.algorithm!r}"
        )

    def _touch_block(self, address: int) -> bytes:
        """Access one block through the cache, refilling on a miss."""
        block_index = address // self.image.block_size
        if self.cache.access(address):
            self.cycles += 1
        else:
            clb_hit = self.clb.lookup(block_index)
            line = self._decompress_block(self.image, block_index)
            self._lines[block_index] = line
            self.refills += 1
            self.cycles += 1 + self.engine.refill_cycles(
                len(self.image.blocks[block_index]), len(line), clb_hit
            )
        return self._lines[block_index]

    def fetch(self, address: int) -> int:
        """Fetch one 32-bit instruction word (big-endian, MIPS)."""
        line = self._touch_block(address)
        offset = address % self.image.block_size
        return int.from_bytes(line[offset : offset + 4], "big")

    def fetch_bytes(self, address: int, length: int) -> bytes:
        """Fetch ``length`` raw bytes, spanning blocks when needed.

        This is the CISC fetch path: x86 instructions are variable
        length, so the decoder asks for a window that may straddle a
        cache-block boundary (each block touched counts as an access).
        The window is clamped at the end of the program image.
        """
        block_size = self.image.block_size
        end = min(address + length, self.image.original_size)
        out = bytearray()
        position = address
        while position < end:
            line = self._touch_block(position)
            offset = position % block_size
            take = min(block_size - offset, end - position)
            out.extend(line[offset : offset + take])
            position += take
        return bytes(out)


def run_compressed(
    image: CompressedImage,
    machine: Optional[MipsMachine] = None,
    max_instructions: int = 1_000_000,
    **port_kwargs,
) -> ExecutionResult:
    """Run a (pre-loaded, pre-set-up) machine fetching from ``image``.

    The machine's data memory stays its own; only instruction fetches go
    through the compressed system, mirroring the paper's design (data is
    never compressed).
    """
    if machine is None:
        machine = MipsMachine()
        machine.load_code(decompress_image(image))
    port = CompressedFetchPort(image, **port_kwargs)
    machine._fetch_hook = port.fetch
    machine.run(max_instructions=max_instructions)
    return ExecutionResult(
        instructions=machine.instructions_executed,
        fetch_cycles=port.cycles,
        hit_ratio=port.cache.stats.hit_ratio,
        clb_hit_ratio=port.clb.stats.hit_ratio,
        refills=port.refills,
    )
