"""Execution-driven simulation: run a CPU out of compressed memory.

This closes the loop of Figure 1: a :class:`~repro.isa.mips.interp.MipsMachine`
executes a program, but every instruction fetch is served by the
compressed memory system — on an I-cache miss the refill engine locates
the block via the LAT/CLB and *actually decompresses it* with the real
codec, and the fetched word comes out of that decompressed block.  The
program's results are therefore computed through the entire compression
pipeline; a single wrong bit anywhere would corrupt execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import decompress_image
from repro.core.lat import CompressedImage
from repro.isa.mips.interp import MipsMachine
from repro.memory.cache import InstructionCache
from repro.memory.clb import CLB
from repro.memory.refill import RefillEngine, RefillTiming


@dataclass
class ExecutionResult:
    """Outcome of one execution-driven run."""

    instructions: int
    fetch_cycles: int
    hit_ratio: float
    clb_hit_ratio: float
    refills: int

    @property
    def fetch_cycles_per_instruction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.fetch_cycles / self.instructions


class CompressedFetchPort:
    """Serves instruction fetches from a compressed image.

    Installed as the machine's fetch hook.  Decompressed blocks are held
    in a dictionary standing in for the I-cache's data array; hit/miss
    and timing behaviour come from the cache/CLB/refill models.  Every
    refill runs the real block decompressor.

    ``refill_burst`` > 1 decodes the missing block and its ``burst-1``
    successors in one ``decompress_blocks`` call (the batch engine's
    sweet spot) and parks the extras in a prefetch buffer.  The modelled
    machine is unchanged — prefetched lines enter the cache, and are
    charged their refill cycles, only when their own miss arrives — so
    all statistics are burst-invariant; bursting only amortises host-side
    decode cost.
    """

    def __init__(
        self,
        image: CompressedImage,
        cache_size: int = 1024,
        associativity: int = 2,
        timing: RefillTiming = RefillTiming(),
        clb_entries: int = 8,
        decompress_block=None,
        decompress_blocks=None,
        refill_burst: int = 1,
    ) -> None:
        if refill_burst < 1:
            raise ValueError("refill_burst must be >= 1")
        self.image = image
        self.cache = InstructionCache(cache_size, image.block_size, associativity)
        self.clb = CLB(clb_entries, image.compact_lat.group_size)
        self.engine = RefillEngine(image.algorithm, timing)
        self.cycles = 0
        self.refills = 0
        self.refill_burst = refill_burst
        self._lines: Dict[int, bytes] = {}
        #: Blocks decoded ahead of demand by a miss burst.  A prefetched
        #: line is *not* installed in the cache or charged any cycles
        #: until its own miss arrives, so hit/refill/cycle statistics are
        #: identical for every burst size — only the number of codec
        #: invocations changes.
        self._prefetched: Dict[int, bytes] = {}
        self._decompress_block = decompress_block or self._default_decompress
        self._decompress_blocks = decompress_blocks or self._default_decompress_blocks

    def _codec_for(self, image: CompressedImage):
        from repro.core.samc import SamcCodec, samc_decompress  # noqa: F401
        from repro.core.sadc import MipsSadcCodec, X86SadcCodec  # noqa: F401

        if image.algorithm == "SAMC":
            return SamcCodec(
                word_bits=image.metadata["word_bits"],
                streams=[s.positions for s in image.metadata["streams"]],
                connect_bits=image.metadata["connect_bits"],
                block_size=image.block_size,
                probability_mode=image.metadata["probability_mode"],
            )
        if image.algorithm == "SADC" and image.metadata.get("isa") == "mips":
            return MipsSadcCodec(block_size=image.block_size)
        if image.algorithm == "byte-huffman":
            from repro.baselines.byte_huffman import ByteHuffmanCodec

            return ByteHuffmanCodec(image.block_size)
        raise ValueError(
            f"no block decompressor for {image.algorithm!r}"
        )

    def _default_decompress(self, image: CompressedImage, index: int) -> bytes:
        return self._codec_for(image).decompress_block(image, index)

    def _default_decompress_blocks(self, image: CompressedImage, indices):
        return self._codec_for(image).decompress_blocks(image, indices)

    def _touch_block(self, address: int) -> bytes:
        """Access one block through the cache, refilling on a miss."""
        block_index = address // self.image.block_size
        if self.cache.access(address):
            self.cycles += 1
        else:
            clb_hit = self.clb.lookup(block_index)
            line = self._prefetched.pop(block_index, None)
            if line is None:
                if self.refill_burst > 1:
                    burst = range(
                        block_index,
                        min(
                            block_index + self.refill_burst,
                            self.image.block_count(),
                        ),
                    )
                    lines = self._decompress_blocks(self.image, burst)
                    line = lines[0]
                    for ahead, decoded in zip(burst, lines):
                        if ahead != block_index:
                            self._prefetched[ahead] = decoded
                else:
                    line = self._decompress_block(self.image, block_index)
            self._lines[block_index] = line
            self.refills += 1
            self.cycles += 1 + self.engine.refill_cycles(
                len(self.image.blocks[block_index]), len(line), clb_hit
            )
        return self._lines[block_index]

    def fetch(self, address: int) -> int:
        """Fetch one 32-bit instruction word (big-endian, MIPS)."""
        line = self._touch_block(address)
        offset = address % self.image.block_size
        return int.from_bytes(line[offset : offset + 4], "big")

    def fetch_bytes(self, address: int, length: int) -> bytes:
        """Fetch ``length`` raw bytes, spanning blocks when needed.

        This is the CISC fetch path: x86 instructions are variable
        length, so the decoder asks for a window that may straddle a
        cache-block boundary (each block touched counts as an access).
        The window is clamped at the end of the program image.
        """
        block_size = self.image.block_size
        end = min(address + length, self.image.original_size)
        out = bytearray()
        position = address
        while position < end:
            line = self._touch_block(position)
            offset = position % block_size
            take = min(block_size - offset, end - position)
            out.extend(line[offset : offset + take])
            position += take
        return bytes(out)


def run_compressed(
    image: CompressedImage,
    machine: Optional[MipsMachine] = None,
    max_instructions: int = 1_000_000,
    **port_kwargs,
) -> ExecutionResult:
    """Run a (pre-loaded, pre-set-up) machine fetching from ``image``.

    The machine's data memory stays its own; only instruction fetches go
    through the compressed system, mirroring the paper's design (data is
    never compressed).
    """
    if machine is None:
        machine = MipsMachine()
        machine.load_code(decompress_image(image))
    port = CompressedFetchPort(image, **port_kwargs)
    machine._fetch_hook = port.fetch
    machine.run(max_instructions=max_instructions)
    return ExecutionResult(
        instructions=machine.instructions_executed,
        fetch_cycles=port.cycles,
        hit_ratio=port.cache.stats.hit_ratio,
        clb_hit_ratio=port.clb.stats.hit_ratio,
        refills=port.refills,
    )
