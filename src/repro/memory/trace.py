"""Synthetic instruction-fetch address traces.

The paper's performance argument is behavioural: "The loss in
performance should therefore depend on the instruction cache hit ratio."
To exercise it we need fetch traces with controllable locality.  The
generator runs a loop-nest model over the program's address space:
execution sits in a loop region for a while (re-fetching the same
blocks), then migrates — producing the hit ratios real I-caches see,
tunable from tight-loop (~99% hits) to branchy (~80%).
"""

from __future__ import annotations

import random
from typing import Iterator


def generate_trace(
    code_size: int,
    length: int = 100_000,
    seed: int = 0,
    mean_loop_bytes: int = 256,
    mean_iterations: int = 24,
) -> Iterator[int]:
    """Yield ``length`` word-aligned fetch addresses within the program.

    ``mean_loop_bytes`` controls working-set size (bigger loops overflow
    the cache more) and ``mean_iterations`` controls reuse (more
    iterations raise the hit ratio).
    """
    if code_size < 8:
        raise ValueError("code_size too small to trace")
    rng = random.Random(seed)
    emitted = 0
    while emitted < length:
        loop_bytes = max(8, int(rng.expovariate(1.0 / mean_loop_bytes)))
        loop_bytes = min(loop_bytes, code_size)
        start = rng.randrange(0, max(1, code_size - loop_bytes)) & ~3
        iterations = max(1, int(rng.expovariate(1.0 / mean_iterations)))
        for _ in range(iterations):
            address = start
            while address < start + loop_bytes and emitted < length:
                yield address
                emitted += 1
                address += 4
            if emitted >= length:
                return
