"""Bit-field helpers shared by the ISA models and SAMC stream machinery.

A *bit position* in this package always refers to a bit index within a
fixed-width word, counted from the most significant bit: position 0 of a
32-bit MIPS instruction is bit 31 in hardware terms (the top bit of the
opcode field).  Counting MSB-first keeps the mapping between the paper's
stream diagrams (Figure 2) and our code direct: stream bits are listed in
the order they are fed to the Markov model.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def extract_bits(word: int, positions: Sequence[int], width: int) -> int:
    """Gather the bits of ``word`` at MSB-first ``positions`` into an int.

    The first listed position becomes the most significant bit of the
    result.  ``width`` is the width of ``word``.  Positions must be
    unique: a duplicate raises :class:`ValueError`, since a repeated
    position cannot round-trip through :func:`deposit_bits` (the layout
    verifier's tiling check relies on this).
    """
    value = 0
    seen = 0
    for pos in positions:
        if not 0 <= pos < width:
            raise ValueError(f"bit position {pos} out of range for width {width}")
        bit = 1 << pos
        if seen & bit:
            raise ValueError(f"duplicate bit position {pos}")
        seen |= bit
        value = (value << 1) | ((word >> (width - 1 - pos)) & 1)
    return value


def deposit_bits(value: int, positions: Sequence[int], width: int) -> int:
    """Scatter ``value`` back into a ``width``-bit word at ``positions``.

    Inverse of :func:`extract_bits` for the covered positions; uncovered
    positions are zero.
    """
    word = 0
    nbits = len(positions)
    seen = 0
    for index, pos in enumerate(positions):
        if not 0 <= pos < width:
            raise ValueError(f"bit position {pos} out of range for width {width}")
        mask = 1 << pos
        if seen & mask:
            raise ValueError(f"duplicate bit position {pos}")
        seen |= mask
        bit = (value >> (nbits - 1 - index)) & 1
        word |= bit << (width - 1 - pos)
    return word


def word_to_bits(word: int, width: int) -> List[int]:
    """Explode a word into a list of bits, MSB first."""
    return [(word >> (width - 1 - i)) & 1 for i in range(width)]


def bits_to_word(bits: Iterable[int]) -> int:
    """Collapse an MSB-first bit list back into an integer."""
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        value = (value << 1) | bit
    return value


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value &= (1 << width) - 1
    if value & (1 << (width - 1)):
        value -= 1 << width
    return value


def chunk_words(data: bytes, word_bytes: int) -> List[int]:
    """Split ``data`` into big-endian fixed-width words.

    Raises :class:`ValueError` when the data is not a whole number of words
    — a compressed-code image must cover complete instructions.
    """
    if len(data) % word_bytes != 0:
        raise ValueError(
            f"data length {len(data)} is not a multiple of word size {word_bytes}"
        )
    return [
        int.from_bytes(data[i : i + word_bytes], "big")
        for i in range(0, len(data), word_bytes)
    ]


def words_to_bytes(words: Iterable[int], word_bytes: int) -> bytes:
    """Serialise fixed-width words back to big-endian bytes."""
    out = bytearray()
    for word in words:
        out.extend(int(word).to_bytes(word_bytes, "big"))
    return bytes(out)
