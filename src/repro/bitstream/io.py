"""MSB-first bit-level I/O.

Every coder in this package (Huffman, arithmetic, LZW, LZSS) reads and
writes *bit streams*, not byte streams.  The convention throughout is
MSB-first: the first bit written becomes the most significant bit of the
first output byte.  This matches how the paper's decompression engine
consumes compressed code 8 bits at a time (``val = (val << 8) | get_byte()``
in the Section 3 pseudocode).

The multi-bit primitives (:meth:`BitWriter.write_bits`,
:meth:`BitWriter.write_bytes`, :meth:`BitReader.read_bits`,
:meth:`BitReader.read_bytes`) are *batched*: they move whole words
through a cached bit accumulator instead of looping bit by bit, which is
what makes the Huffman/LZW/gzipish hot paths fast.  Argument validation
happens once at these public entry points; the internal batch loops
assume the invariant ``0 <= value < 2**width`` already holds.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bits MSB-first and renders them to ``bytes``.

    >>> w = BitWriter()
    >>> w.write_bit(1); w.write_bits(0b0100000, 7)
    >>> bytes(w.getvalue())
    b'\\xa0'
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._nbits = 0

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._buffer) + self._nbits

    @property
    def bit_length(self) -> int:
        """Number of bits written so far (alias of ``len``)."""
        return len(self)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1).

        This is the public boundary for single-bit writes, so the 0/1
        check lives here (and only here): the batched writers below
        validate their whole argument once and never re-check per bit.
        """
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self._current = (self._current << 1) | bit
        self._nbits += 1
        if self._nbits == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._nbits = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant first.

        Validates once, then drains the accumulator a byte at a time —
        no per-bit calls, so Huffman codewords and LZW codes land in one
        pass.
        """
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {width} bits")
        nbits = self._nbits + width
        acc = (self._current << width) | value
        buffer = self._buffer
        while nbits >= 8:
            nbits -= 8
            buffer.append((acc >> nbits) & 0xFF)
        self._current = acc & ((1 << nbits) - 1)
        self._nbits = nbits

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes (8 bits each, MSB-first).

        Byte-aligned streams extend the buffer directly; unaligned ones
        shift each byte through the cached accumulator (one append per
        byte, not eight).
        """
        if self._nbits == 0:
            self._buffer.extend(data)
            return
        nbits = self._nbits
        acc = self._current
        mask = (1 << nbits) - 1
        append = self._buffer.append
        for byte in data:
            acc = (acc << 8) | byte
            append((acc >> nbits) & 0xFF)
            acc &= mask
        self._current = acc

    def align_to_byte(self, fill: int = 0) -> None:
        """Pad with ``fill`` bits until the stream is byte-aligned."""
        while self._nbits != 0:
            self.write_bit(fill)

    def getvalue(self) -> bytes:
        """Return the stream as bytes, zero-padding a partial final byte."""
        if self._nbits == 0:
            return bytes(self._buffer)
        tail = self._current << (8 - self._nbits)
        return bytes(self._buffer) + bytes([tail])


class BitReader:
    """Reads bits MSB-first from a ``bytes`` object.

    Reading past the end raises :class:`EOFError` unless the reader was
    constructed with ``pad=True``, in which case it yields 0 bits forever
    (arithmetic decoders legitimately read a few bits past the payload).
    """

    def __init__(self, data: bytes, pad: bool = False) -> None:
        self._data = data
        self._pos = 0  # bit position
        self._pad = pad

    @property
    def bit_position(self) -> int:
        """Current read position, in bits from the start."""
        return self._pos

    @property
    def bits_remaining(self) -> int:
        """Bits left before the physical end of the buffer."""
        return max(0, 8 * len(self._data) - self._pos)

    def seek_bit(self, position: int) -> None:
        """Jump to an absolute bit offset (enables block random access)."""
        if position < 0:
            raise ValueError("bit position must be non-negative")
        self._pos = position

    def read_bit(self) -> int:
        """Read one bit; 0-fill past the end when padding is enabled."""
        byte_index, bit_index = divmod(self._pos, 8)
        if byte_index >= len(self._data):
            if self._pad:
                self._pos += 1
                return 0
            raise EOFError("read past end of bit stream")
        self._pos += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits and return them as an unsigned integer.

        Batched: the covered byte span is lifted into one integer via
        ``int.from_bytes`` and the field extracted with a single shift,
        instead of ``width`` per-bit reads.
        """
        if width < 0:
            raise ValueError("width must be non-negative")
        if width == 0:
            return 0
        pos = self._pos
        end = pos + width
        data = self._data
        available = 8 * len(data)
        if end > available and not self._pad:
            # Mirror the bit-at-a-time loop: bits up to the physical end
            # are consumed before the failing read raises.
            self._pos = max(pos, available)
            raise EOFError("read past end of bit stream")
        first, offset = divmod(pos, 8)
        last = (end + 7) >> 3
        span_end = min(last, len(data))
        chunk = int.from_bytes(data[first:span_end], "big") if span_end > first else 0
        # Zero-fill any bytes past the physical end (pad=True semantics).
        chunk <<= 8 * (last - max(span_end, first))
        self._pos = end
        return (chunk >> (8 * (last - first) - offset - width)) & ((1 << width) - 1)

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` whole bytes."""
        if count <= 0:
            return b""
        pos = self._pos
        if pos & 7 == 0 and pos + 8 * count <= 8 * len(self._data):
            start = pos >> 3
            self._pos = pos + 8 * count
            return bytes(self._data[start : start + count])
        return self.read_bits(8 * count).to_bytes(count, "big")
