"""Bit-level I/O and bit-field manipulation substrate."""

from repro.bitstream.fields import (
    bits_to_word,
    chunk_words,
    deposit_bits,
    extract_bits,
    sign_extend,
    word_to_bits,
    words_to_bytes,
)
from repro.bitstream.io import BitReader, BitWriter

__all__ = [
    "BitReader",
    "BitWriter",
    "bits_to_word",
    "chunk_words",
    "deposit_bits",
    "extract_bits",
    "sign_extend",
    "word_to_bits",
    "words_to_bytes",
]
