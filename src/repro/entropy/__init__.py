"""Entropy-coding substrate: statistics, Huffman, binary arithmetic coding."""

from repro.entropy.arith import (
    PROB_BITS,
    PROB_ONE,
    BinaryArithmeticDecoder,
    BinaryArithmeticEncoder,
    decode_bits,
    encode_bits,
    quantize_power_of_two,
    quantize_probability,
)
from repro.entropy.huffman import (
    HuffmanCode,
    HuffmanDecoder,
    HuffmanEncoder,
    build_code,
    build_code_from_symbols,
    canonical_codewords,
    code_lengths,
)
from repro.entropy.stats import (
    bit_correlation,
    bit_matrix,
    entropy_bits,
    frequencies,
    markov_stream_entropy,
    total_information_bits,
)

__all__ = [
    "PROB_BITS",
    "PROB_ONE",
    "BinaryArithmeticDecoder",
    "BinaryArithmeticEncoder",
    "HuffmanCode",
    "HuffmanDecoder",
    "HuffmanEncoder",
    "bit_correlation",
    "bit_matrix",
    "build_code",
    "build_code_from_symbols",
    "canonical_codewords",
    "code_lengths",
    "decode_bits",
    "encode_bits",
    "entropy_bits",
    "frequencies",
    "markov_stream_entropy",
    "quantize_power_of_two",
    "quantize_probability",
    "total_information_bits",
]
