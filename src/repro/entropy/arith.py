"""Binary arithmetic (range) coding with byte renormalisation.

SAMC drives a *binary* arithmetic coder with Markov-model predictions
(Section 3 of the paper).  The paper's hardware decoder keeps a 24-bit
interval and shifts compressed code in 8 bits at a time; we implement the
software-equivalent construction, Subbotin's carry-less range coder:
32-bit ``low``/``range`` registers, bytewise renormalisation, no carry
propagation.  The coded stream is identical in spirit — an interval
subdivision per bit, refreshed a byte at a time — and the coder is exact:
decode(encode(bits)) == bits for any prediction sequence.

Probabilities are quantised to 16 bits (``PROB_ONE == 1 << 16``).  The
paper's shift-only hardware variant constrains the less-probable symbol's
probability to a power of 1/2 (Witten et al. bound the efficiency loss at
~5%); :func:`quantize_power_of_two` implements that constraint.
"""

from __future__ import annotations

import math
from typing import List

PROB_BITS = 16
PROB_ONE = 1 << PROB_BITS

_TOP = 1 << 24
_BOT = 1 << 16
_MASK = 0xFFFFFFFF


def quantize_probability(p0: float) -> int:
    """Quantise P(bit=0) to a 16-bit integer in [1, PROB_ONE-1].

    Clamping away from 0 and 1 guarantees both interval halves stay
    non-empty, so any bit remains decodable even when the model predicted
    it with probability ~0 (it just costs many output bits).
    """
    if not 0.0 <= p0 <= 1.0:
        raise ValueError(f"probability {p0} outside [0, 1]")
    q = int(round(p0 * PROB_ONE))
    return max(1, min(PROB_ONE - 1, q))


def quantize_probability_8bit(p0: float) -> int:
    """Quantise P(bit=0) to 8-bit precision (stored in one byte).

    Returns the 16-bit coded value (a multiple of 256) so it plugs into
    the same coder interface; the decoder's probability memory only needs
    8 bits per entry, halving SAMC's table storage at a negligible
    compression cost.
    """
    if not 0.0 <= p0 <= 1.0:
        raise ValueError(f"probability {p0} outside [0, 1]")
    q8 = max(1, min(255, int(round(p0 * 256))))
    return q8 << 8


def quantize_power_of_two(p0: float) -> int:
    """Quantise so the less-probable symbol has probability 2**-k.

    This is the paper's multiplier-free decoder option: the midpoint
    computation becomes a shift (plus a subtraction when 0 is the more
    probable symbol).  ``k`` is clamped to [1, PROB_BITS].
    """
    if not 0.0 <= p0 <= 1.0:
        raise ValueError(f"probability {p0} outside [0, 1]")
    lps = min(p0, 1.0 - p0)
    if lps <= 0.0:
        k = PROB_BITS
    else:
        k = int(round(-math.log2(lps)))
        k = max(1, min(PROB_BITS, k))
    lps_q = PROB_ONE >> k
    if p0 <= 0.5:
        return max(1, lps_q)
    return PROB_ONE - max(1, lps_q)


def flush_interval(low: int, range_: int, out: bytearray) -> None:
    """Append the shortest byte prefix of a value in ``[low, low+range)``.

    Shared by :meth:`BinaryArithmeticEncoder.finish` and the fastpath
    coder kernels (:mod:`repro.fastpath`), so both paths terminate blocks
    with the identical byte sequence by construction.
    """
    top = low + range_
    for nbytes in range(5):
        shift = 32 - 8 * nbytes
        if shift >= 33:  # pragma: no cover - nbytes starts at 0
            continue
        step = 1 << shift if shift < 33 else 0
        value = ((low + step - 1) >> shift) << shift if shift else low
        if low <= value < top or (value == low == 0):
            for byte_index in range(nbytes):
                out.append((value >> (24 - 8 * byte_index)) & 0xFF)
            return
    raise AssertionError(  # pragma: no cover - nbytes=4 always succeeds
        "flush failed to find an in-interval value"
    )


class BinaryArithmeticEncoder:
    """Carry-less binary range encoder.

    Call :meth:`encode_bit` once per bit with the model's quantised
    P(bit=0), then :meth:`finish` to flush; the result is a standalone
    byte string decodable by :class:`BinaryArithmeticDecoder`.
    """

    def __init__(self) -> None:
        self._low = 0
        self._range = _MASK
        self._out = bytearray()
        self._finished = False

    def encode_bit(self, bit: int, p0_q: int) -> None:
        """Encode one bit under quantised probability ``p0_q`` of a 0."""
        if self._finished:
            raise RuntimeError("encoder already finished")
        if not 1 <= p0_q <= PROB_ONE - 1:
            raise ValueError(f"quantised probability {p0_q} out of range")
        split = (self._range >> PROB_BITS) * p0_q
        if bit == 0:
            self._range = split
        elif bit == 1:
            self._low = (self._low + split) & _MASK
            self._range -= split
        else:
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self._normalize()

    def _normalize(self) -> None:
        while True:
            if ((self._low ^ (self._low + self._range)) & _MASK) < _TOP:
                pass  # top byte settled: emit it
            elif self._range < _BOT:
                self._range = (-self._low) & (_BOT - 1)
            else:
                break
            self._out.append((self._low >> 24) & 0xFF)
            self._low = (self._low << 8) & _MASK
            self._range = (self._range << 8) & _MASK

    def finish(self) -> bytes:
        """Flush and return the compressed bytes.

        Emits the *shortest* byte prefix of a value inside the final
        interval: the decoder zero-pads reads past the end, so trailing
        zero bytes need not be stored.  Block-oriented compression calls
        this per cache block, so a short flush matters for the ratio.
        """
        if not self._finished:
            flush_interval(self._low, self._range, self._out)
            self._finished = True
        return bytes(self._out)

    @property
    def bytes_emitted(self) -> int:
        """Bytes produced so far (pre-flush)."""
        return len(self._out)


class BinaryArithmeticDecoder:
    """Decoder matching :class:`BinaryArithmeticEncoder`.

    Reading past the end of the payload is legal (the flush tail and the
    final interval allow a few phantom zero bytes), mirroring how the
    paper's refill engine can read slightly beyond a compressed block
    without harm.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._low = 0
        self._range = _MASK
        self._code = 0
        for _ in range(4):
            self._code = ((self._code << 8) | self._next_byte()) & _MASK

    def _next_byte(self) -> int:
        byte = self._data[self._pos] if self._pos < len(self._data) else 0
        self._pos += 1
        return byte

    def decode_bit(self, p0_q: int) -> int:
        """Decode one bit under quantised probability ``p0_q`` of a 0."""
        if not 1 <= p0_q <= PROB_ONE - 1:
            raise ValueError(f"quantised probability {p0_q} out of range")
        split = (self._range >> PROB_BITS) * p0_q
        if ((self._code - self._low) & _MASK) < split:
            bit = 0
            self._range = split
        else:
            bit = 1
            self._low = (self._low + split) & _MASK
            self._range -= split
        self._normalize()
        return bit

    def _normalize(self) -> None:
        while True:
            if ((self._low ^ (self._low + self._range)) & _MASK) < _TOP:
                pass
            elif self._range < _BOT:
                self._range = (-self._low) & (_BOT - 1)
            else:
                break
            self._code = ((self._code << 8) | self._next_byte()) & _MASK
            self._low = (self._low << 8) & _MASK
            self._range = (self._range << 8) & _MASK


def encode_bits(bits: List[int], probabilities: List[int]) -> bytes:
    """Encode a bit list under per-bit quantised probabilities."""
    if len(bits) != len(probabilities):
        raise ValueError("bits and probabilities must have equal length")
    encoder = BinaryArithmeticEncoder()
    for bit, p0_q in zip(bits, probabilities):
        encoder.encode_bit(bit, p0_q)
    return encoder.finish()


def decode_bits(data: bytes, probabilities: List[int]) -> List[int]:
    """Decode ``len(probabilities)`` bits (inverse of :func:`encode_bits`)."""
    decoder = BinaryArithmeticDecoder(data)
    return [decoder.decode_bit(p0_q) for p0_q in probabilities]
