"""Huffman coding: tree construction, canonical codes, and a codec.

Used three ways in this reproduction:

* the **byte-based Huffman baseline** (Kozuch & Wolfe, compared in Fig. 9),
* SADC's final entropy-coding pass over its dictionary-index and operand
  streams (Section 4.1, last step),
* table-size accounting — canonical codes let the decoder table be stored
  as one length per symbol.

Construction is deterministic: ties in the priority queue break on
(symbol count, smallest symbol), so identical inputs always produce
identical tables, a property the tests and the LAT layout rely on.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bitstream.io import BitReader, BitWriter
from repro.resilience.errors import CATEGORY_SYMBOL, CorruptedStreamError


@dataclass(frozen=True)
class HuffmanCode:
    """A complete prefix code: symbol -> (codeword, length)."""

    lengths: Dict[int, int]
    codewords: Dict[int, int]

    @property
    def symbols(self) -> List[int]:
        return sorted(self.lengths)

    def mean_length(self, counts: Dict[int, int]) -> float:
        """Average codeword length under the given symbol distribution."""
        total = sum(counts.values())
        if total == 0:
            return 0.0
        return sum(self.lengths[s] * c for s, c in counts.items()) / total

    def table_bits(self, symbol_bits: int) -> int:
        """Storage cost of the decode table (canonical form).

        Canonical Huffman needs only the code length per symbol plus the
        symbol values themselves: ``(symbol_bits + 5)`` bits per entry
        (5 bits encode lengths up to 31).
        """
        return len(self.lengths) * (symbol_bits + 5)


def code_lengths(counts: Dict[int, int]) -> Dict[int, int]:
    """Optimal prefix-code lengths for an empirical distribution.

    A single-symbol alphabet gets a 1-bit code (the degenerate case every
    real bitstream format also special-cases).
    """
    alive = [(count, symbol) for symbol, count in counts.items() if count > 0]
    if not alive:
        return {}
    if len(alive) == 1:
        return {alive[0][1]: 1}
    # Heap of (weight, tiebreak, node) where node is either a symbol or a
    # list of symbols (an internal node's leaf set).
    heap: List[Tuple[int, int, List[int]]] = [
        (count, symbol, [symbol]) for count, symbol in alive
    ]
    heapq.heapify(heap)
    lengths = {symbol: 0 for _count, symbol in alive}
    while len(heap) > 1:
        w1, t1, leaves1 = heapq.heappop(heap)
        w2, t2, leaves2 = heapq.heappop(heap)
        for symbol in leaves1 + leaves2:
            lengths[symbol] += 1
        heapq.heappush(heap, (w1 + w2, min(t1, t2), leaves1 + leaves2))
    return lengths


def canonical_codewords(lengths: Dict[int, int]) -> Dict[int, int]:
    """Assign canonical codewords (sorted by length, then symbol)."""
    order = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codewords: Dict[int, int] = {}
    code = 0
    previous_length = 0
    for symbol, length in order:
        code <<= length - previous_length
        codewords[symbol] = code
        code += 1
        previous_length = length
    return codewords


def kraft_numerator(lengths: Dict[int, int], scale_bits: int = 32) -> int:
    """Kraft sum of the code lengths, scaled by ``2**scale_bits``.

    Exact integer arithmetic (no floats): a complete prefix code sums to
    exactly ``1 << scale_bits``; more means the lengths cannot form a
    prefix code at all, less means the code wastes bit patterns.
    """
    return sum(1 << (scale_bits - length) for length in lengths.values())


def find_prefix_violation(
    lengths: Dict[int, int], codewords: Dict[int, int]
) -> Optional[Tuple[int, int]]:
    """First pair of symbols whose codewords collide, or ``None``.

    A collision is either a duplicate codeword or one codeword being a
    proper prefix of another — both make the table undecodable.
    """
    by_length: Dict[int, Dict[int, int]] = {}
    for symbol in sorted(lengths):
        length = lengths[symbol]
        word = codewords[symbol]
        if word.bit_length() > length:
            return (symbol, symbol)  # codeword does not fit its length
        table = by_length.setdefault(length, {})
        if word in table:
            return (table[word], symbol)
        table[word] = symbol
    ordered_lengths = sorted(by_length)
    for symbol in sorted(lengths):
        length = lengths[symbol]
        word = codewords[symbol]
        for shorter in ordered_lengths:
            if shorter >= length:
                break
            prefix = word >> (length - shorter)
            if prefix in by_length[shorter]:
                return (by_length[shorter][prefix], symbol)
    return None


def construction_checks_enabled() -> bool:
    """Whether :func:`build_code` self-verifies its output.

    On by default in debug mode; ``python -O`` or ``REPRO_VERIFY=0``
    switches the check off.  Verification never alters the table, so the
    coded bitstream is identical either way.
    """
    return __debug__ and os.environ.get("REPRO_VERIFY", "1") != "0"


def verify_code(lengths: Dict[int, int], codewords: Dict[int, int]) -> None:
    """Raise :class:`ValueError` unless the table is a sound prefix code."""
    violation = find_prefix_violation(lengths, codewords)
    if violation is not None:
        first, second = violation
        raise ValueError(
            f"Huffman table is not prefix-free: symbols {first} and "
            f"{second} have colliding codewords"
        )
    if lengths and kraft_numerator(lengths) > (1 << 32):
        raise ValueError("Huffman table overfull: Kraft sum exceeds 1")


def build_code(counts: Dict[int, int]) -> HuffmanCode:
    """Build a canonical Huffman code from symbol counts.

    In debug mode (see :func:`construction_checks_enabled`) the freshly
    built table is verified for prefix-freeness and Kraft soundness
    before it is released to any encoder — table bugs surface here, at
    construction, not deep inside a block decode.
    """
    lengths = code_lengths(counts)
    codewords = canonical_codewords(lengths)
    if construction_checks_enabled():
        verify_code(lengths, codewords)
    return HuffmanCode(lengths=lengths, codewords=codewords)


def build_code_from_symbols(symbols: Iterable[int]) -> HuffmanCode:
    """Convenience: count then build."""
    counts: Dict[int, int] = {}
    for symbol in symbols:
        counts[symbol] = counts.get(symbol, 0) + 1
    return build_code(counts)


class HuffmanEncoder:
    """Encodes symbol sequences under a fixed :class:`HuffmanCode`."""

    def __init__(self, code: HuffmanCode) -> None:
        self._code = code

    def encode_to(self, writer: BitWriter, symbols: Sequence[int]) -> None:
        """Append the coded symbols to an existing bit writer."""
        codewords = self._code.codewords
        lengths = self._code.lengths
        for symbol in symbols:
            if symbol not in codewords:
                raise KeyError(f"symbol {symbol!r} not in Huffman table")
            writer.write_bits(codewords[symbol], lengths[symbol])

    def encode(self, symbols: Sequence[int]) -> bytes:
        """Encode to fresh bytes (zero-padded to a byte boundary)."""
        writer = BitWriter()
        self.encode_to(writer, symbols)
        return writer.getvalue()

    def encoded_bits(self, symbols: Sequence[int]) -> int:
        """Exact coded length in bits without materialising the stream."""
        lengths = self._code.lengths
        return sum(lengths[s] for s in symbols)


class HuffmanDecoder:
    """Decodes bit streams produced by :class:`HuffmanEncoder`."""

    def __init__(self, code: HuffmanCode) -> None:
        self._table: Dict[Tuple[int, int], int] = {
            (code.lengths[s], code.codewords[s]): s for s in code.lengths
        }
        self._max_length = max(code.lengths.values(), default=0)

    def decode_from(self, reader: BitReader, count: int) -> List[int]:
        """Decode exactly ``count`` symbols from a bit reader."""
        out: List[int] = []
        for _ in range(count):
            length = 0
            word = 0
            while True:
                word = (word << 1) | reader.read_bit()
                length += 1
                if (length, word) in self._table:
                    out.append(self._table[(length, word)])
                    break
                if length > self._max_length:
                    raise CorruptedStreamError(
                        "invalid Huffman bit sequence",
                        offset=reader.bit_position // 8,
                        category=CATEGORY_SYMBOL,
                    )
        return out

    def decode(self, data: bytes, count: int) -> List[int]:
        """Decode ``count`` symbols from bytes."""
        return self.decode_from(BitReader(data), count)
