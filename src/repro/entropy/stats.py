"""Statistical helpers: frequencies, entropy, and bit correlation.

SAMC's stream-assignment optimiser (Section 3) groups instruction bits by
pairwise correlation and scores candidate groupings by total model
entropy; these are the primitives it uses.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Sequence

import numpy as np


def frequencies(symbols: Iterable[int]) -> Counter:
    """Count symbol occurrences."""
    return Counter(symbols)


def entropy_bits(counts: Dict[int, int]) -> float:
    """Shannon entropy in bits/symbol of an empirical distribution."""
    total = sum(counts.values())
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts.values():
        if count:
            p = count / total
            result -= p * math.log2(p)
    return result


def total_information_bits(counts: Dict[int, int]) -> float:
    """Ideal coded size (bits) of the sequence the counts came from."""
    total = sum(counts.values())
    return entropy_bits(counts) * total


def bit_matrix(words: Sequence[int], width: int) -> np.ndarray:
    """Explode words into an (n_words, width) 0/1 matrix, MSB first."""
    n = len(words)
    matrix = np.zeros((n, width), dtype=np.uint8)
    for row, word in enumerate(words):
        for col in range(width):
            matrix[row, col] = (word >> (width - 1 - col)) & 1
    return matrix


def bit_correlation(words: Sequence[int], width: int) -> np.ndarray:
    """Pairwise |Pearson correlation| between bit positions.

    Constant bit positions (always 0 or always 1) have zero variance; we
    define their correlation with everything as 0 — they carry no
    information, so stream assignment is indifferent to them.
    """
    matrix = bit_matrix(words, width).astype(np.float64)
    if matrix.shape[0] < 2:
        return np.zeros((width, width))
    std = matrix.std(axis=0)
    centered = matrix - matrix.mean(axis=0)
    cov = centered.T @ centered / matrix.shape[0]
    denom = np.outer(std, std)
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = np.where(denom > 0, cov / denom, 0.0)
    np.fill_diagonal(corr, 1.0)
    return np.abs(corr)


def markov_stream_entropy(
    words: Sequence[int], positions: Sequence[int], width: int
) -> float:
    """First-order (Markov-tree) entropy of one candidate bit stream.

    Models exactly what a SAMC binary Markov tree captures: the entropy of
    each bit conditioned on the *prefix of bits within the same stream
    symbol*.  Lower is better for the arithmetic coder.
    """
    k = len(positions)
    if k == 0:
        return 0.0
    # context -> [count0, count1] where context is the bit-prefix within
    # the symbol, tagged by depth to keep prefixes of different lengths
    # distinct (exactly the nodes of the binary Markov tree).
    contexts: Dict[int, List[int]] = {}
    for word in words:
        context = 1  # sentinel leading 1 encodes the depth
        for pos in positions:
            bit = (word >> (width - 1 - pos)) & 1
            counts = contexts.setdefault(context, [0, 0])
            counts[bit] += 1
            context = (context << 1) | bit
    total_bits_coded = len(words) * k
    if total_bits_coded == 0:
        return 0.0
    info = 0.0
    for counts in contexts.values():
        info += total_information_bits({0: counts[0], 1: counts[1]})
    return info / total_bits_coded
