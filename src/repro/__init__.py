"""Reproduction of "Code Compression for Embedded Systems" (DAC 1998).

Lekatsas & Wolf's two cache-block code-compression algorithms, with every
substrate they depend on:

* :mod:`repro.core.samc` — Semiadaptive Markov Compression (ISA-independent
  statistical coding: per-stream binary Markov trees + arithmetic coding).
* :mod:`repro.core.sadc` — Semiadaptive Dictionary Compression
  (ISA-dependent: opcode dictionary + Huffman-coded operand streams).
* :mod:`repro.isa` — MIPS and x86 instruction-set models.
* :mod:`repro.baselines` — LZW (``compress``), LZSS+Huffman (``gzip``
  stand-in), and byte-based Huffman (Kozuch & Wolfe) comparators.
* :mod:`repro.memory` — the Wolfe/Chanin decompress-on-cache-miss memory
  system (I-cache, LAT, CLB, refill engine).
* :mod:`repro.workloads` — synthetic SPEC95-like benchmark generator.

Quickstart::

    from repro import samc_compress, samc_decompress
    from repro.workloads import generate_benchmark

    program = generate_benchmark("gcc", "mips")
    image = samc_compress(program.code)
    assert samc_decompress(image) == program.code
    print(image.compression_ratio)
"""

from repro.core import (
    CompressedImage,
    sadc_compress,
    sadc_decompress,
    samc_compress,
    samc_decompress,
)

__version__ = "1.0.0"

__all__ = [
    "CompressedImage",
    "sadc_compress",
    "sadc_decompress",
    "samc_compress",
    "samc_decompress",
    "__version__",
]
