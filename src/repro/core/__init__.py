"""The paper's core contribution: SAMC and SADC block compressors."""

from repro.core.lat import (
    CompactLAT,
    CompressedImage,
    LineAddressTable,
    build_lat,
    original_block_count,
    split_blocks,
)
from repro.core.sadc import (
    MipsSadcCodec,
    X86SadcCodec,
    sadc_compress,
    sadc_decompress,
)
from repro.core.samc import SamcCodec, samc_compress, samc_decompress
from repro.core.serialize import (
    SerializationError,
    deserialize_image,
    load_image,
    save_image,
    serialize_image,
)


# repro: contract decode-entry
def decompress_image(image: CompressedImage) -> bytes:
    """Decompress any image this package produced, by algorithm."""
    if image.algorithm == "SAMC":
        return samc_decompress(image)
    if image.algorithm == "SADC":
        return sadc_decompress(image)
    if image.algorithm == "byte-huffman":
        from repro.baselines.byte_huffman import ByteHuffmanCodec

        return ByteHuffmanCodec(image.block_size).decompress(image)
    raise ValueError(f"unknown algorithm {image.algorithm!r}")

__all__ = [
    "CompactLAT",
    "CompressedImage",
    "LineAddressTable",
    "MipsSadcCodec",
    "SamcCodec",
    "SerializationError",
    "X86SadcCodec",
    "build_lat",
    "decompress_image",
    "deserialize_image",
    "load_image",
    "original_block_count",
    "sadc_compress",
    "sadc_decompress",
    "samc_compress",
    "samc_decompress",
    "save_image",
    "serialize_image",
    "split_blocks",
]
