"""Line Address Table (LAT) and the compressed-image container.

In the Wolfe/Chanin organisation the paper adopts, each cache block of
the original program compresses to a different size, so the refill engine
needs a map from *program* block addresses to *compressed* byte offsets.
That map is the LAT, stored in main memory next to the compressed code
(and cached by the CLB, see :mod:`repro.memory.clb`).

The LAT and the model tables (Markov probabilities or the SADC
dictionary) are overhead that honest compression ratios must include;
:class:`CompressedImage` accounts for all three components.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.resilience.errors import (
    CATEGORY_BOUNDS,
    CATEGORY_STRUCTURE,
    CorruptedStreamError,
)


@dataclass(frozen=True)
class LineAddressTable:
    """Maps block index -> byte offset of its compressed data.

    ``entry_bits`` is the width of one stored entry: enough bits to
    address any byte of the compressed payload.  A real implementation
    would pack entries; we model the storage cost exactly and keep the
    offsets as plain integers.
    """

    offsets: Sequence[int]
    payload_bytes: int

    @property
    def entry_bits(self) -> int:
        """Bits per LAT entry (byte-addressing the compressed payload)."""
        if self.payload_bytes <= 1:
            return 1
        return max(1, math.ceil(math.log2(self.payload_bytes)))

    @property
    def storage_bits(self) -> int:
        """Total LAT storage in bits."""
        return len(self.offsets) * self.entry_bits

    @property
    def storage_bytes(self) -> int:
        """Total LAT storage in whole bytes."""
        return (self.storage_bits + 7) // 8

    def _check_index(self, block_index: int) -> None:
        if not 0 <= block_index < len(self.offsets):
            raise CorruptedStreamError(
                f"LAT lookup for block {block_index} outside "
                f"[0, {len(self.offsets)})",
                category=CATEGORY_BOUNDS,
            )

    def block_offset(self, block_index: int) -> int:
        """Compressed byte offset of a block (refill-engine lookup)."""
        self._check_index(block_index)
        offset = self.offsets[block_index]
        if not 0 <= offset <= self.payload_bytes:
            raise CorruptedStreamError(
                f"LAT entry {block_index} points at {offset}, outside the "
                f"{self.payload_bytes}-byte payload",
                offset=offset,
                category=CATEGORY_BOUNDS,
            )
        return offset

    def block_span(self, block_index: int) -> tuple:
        """(start, end) compressed byte span of a block."""
        start = self.block_offset(block_index)
        if block_index + 1 < len(self.offsets):
            end = self.block_offset(block_index + 1)
        else:
            end = self.payload_bytes
        if end < start:
            raise CorruptedStreamError(
                f"LAT entries {block_index}/{block_index + 1} are not "
                f"monotone ({start} > {end})",
                offset=start,
                category=CATEGORY_STRUCTURE,
            )
        return start, end

    def validate(self) -> None:
        """Structural check: offsets monotone and inside the payload.

        Raises :class:`CorruptedStreamError` on the first violation —
        the fuzz driver's LAT-corruption oracle.
        """
        previous = 0
        for index, offset in enumerate(self.offsets):
            if not 0 <= offset <= self.payload_bytes:
                raise CorruptedStreamError(
                    f"LAT entry {index} points at {offset}, outside the "
                    f"{self.payload_bytes}-byte payload",
                    offset=offset,
                    category=CATEGORY_BOUNDS,
                )
            if offset < previous:
                raise CorruptedStreamError(
                    f"LAT entry {index} ({offset}) precedes entry "
                    f"{index - 1} ({previous})",
                    offset=offset,
                    category=CATEGORY_STRUCTURE,
                )
            previous = offset


@dataclass(frozen=True)
class CompactLAT:
    """Wolfe/Chanin-style compacted LAT.

    Storing a full byte offset per block is wasteful: offsets are
    monotone and block sizes are small.  The compacted table keeps one
    full base offset per *group* of ``group_size`` blocks plus a short
    length field for each block in the group; the refill engine adds up
    at most ``group_size - 1`` lengths to locate a line — one extra adder
    pass, which is why the paper pairs the LAT with a CLB cache.
    """

    offsets: Sequence[int]
    block_sizes: Sequence[int]
    payload_bytes: int
    group_size: int = 8

    @property
    def base_bits(self) -> int:
        """Bits for one full base offset."""
        if self.payload_bytes <= 1:
            return 1
        return max(1, math.ceil(math.log2(self.payload_bytes)))

    @property
    def length_bits(self) -> int:
        """Bits for one per-block compressed-length field."""
        largest = max(self.block_sizes, default=1)
        return max(1, math.ceil(math.log2(largest + 1)))

    @property
    def storage_bits(self) -> int:
        n = len(self.block_sizes)
        groups = (n + self.group_size - 1) // self.group_size
        return groups * self.base_bits + n * self.length_bits

    @property
    def storage_bytes(self) -> int:
        return (self.storage_bits + 7) // 8

    def block_offset(self, block_index: int) -> int:
        """Locate a block: group base plus the lengths before it."""
        if not 0 <= block_index < len(self.block_sizes):
            raise CorruptedStreamError(
                f"compact LAT lookup for block {block_index} outside "
                f"[0, {len(self.block_sizes)})",
                category=CATEGORY_BOUNDS,
            )
        group_start = (block_index // self.group_size) * self.group_size
        offset = self.offsets[group_start]
        for i in range(group_start, block_index):
            offset += self.block_sizes[i]
        if not 0 <= offset <= self.payload_bytes:
            raise CorruptedStreamError(
                f"compact LAT resolved block {block_index} to {offset}, "
                f"outside the {self.payload_bytes}-byte payload",
                offset=offset,
                category=CATEGORY_BOUNDS,
            )
        return offset


def build_lat(block_sizes: Sequence[int]) -> LineAddressTable:
    """Build a LAT from per-block compressed sizes (bytes)."""
    offsets: List[int] = []
    position = 0
    for size in block_sizes:
        if size < 0:
            raise ValueError("block size cannot be negative")
        offsets.append(position)
        position += size
    return LineAddressTable(offsets=tuple(offsets), payload_bytes=position)


@dataclass
class CompressedImage:
    """A fully compressed program: payload blocks + model + LAT.

    ``blocks[i]`` holds the bytes that decompress to original block ``i``
    (each original block is ``block_size`` bytes, except possibly the
    last).  ``model_bytes`` is the storage the decompressor's tables need
    (Markov probabilities for SAMC, dictionary + Huffman tables for SADC).
    """

    algorithm: str
    original_size: int
    block_size: int
    blocks: List[bytes]
    model_bytes: int
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        sizes = [len(block) for block in self.blocks]
        self.lat = build_lat(sizes)
        self.compact_lat = CompactLAT(
            offsets=self.lat.offsets,
            block_sizes=tuple(sizes),
            payload_bytes=self.lat.payload_bytes,
        )

    @property
    def payload_bytes(self) -> int:
        """Compressed code bytes, excluding tables."""
        return sum(len(block) for block in self.blocks)

    @property
    def total_bytes(self) -> int:
        """Everything stored in memory: payload + model tables + LAT.

        Uses the compacted (Wolfe/Chanin) LAT representation, the design
        the paper's memory organisation assumes.
        """
        return self.payload_bytes + self.model_bytes + self.compact_lat.storage_bytes

    @property
    def compression_ratio(self) -> float:
        """compressed size / original size — the paper's metric (< 1 is good)."""
        if self.original_size == 0:
            return 1.0
        return self.total_bytes / self.original_size

    @property
    def payload_ratio(self) -> float:
        """Ratio counting only the coded payload (no tables / LAT)."""
        if self.original_size == 0:
            return 1.0
        return self.payload_bytes / self.original_size

    def block_count(self) -> int:
        return len(self.blocks)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm}: {self.original_size} -> {self.total_bytes} bytes "
            f"(payload {self.payload_bytes}, model {self.model_bytes}, "
            f"LAT {self.lat.storage_bytes}), ratio {self.compression_ratio:.3f}"
        )


def original_block_count(original_size: int, block_size: int) -> int:
    """Number of cache blocks a program of ``original_size`` occupies."""
    if block_size <= 0:
        raise ValueError("block size must be positive")
    return (original_size + block_size - 1) // block_size


def split_blocks(code: bytes, block_size: int) -> List[bytes]:  # repro: noqa dual-path-drift (block slicing utility, not a batch codec entry)
    """Slice a code image into cache blocks (last may be short)."""
    if block_size <= 0:
        raise ValueError("block size must be positive")
    return [code[i : i + block_size] for i in range(0, len(code), block_size)]
