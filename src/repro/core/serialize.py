"""On-ROM serialisation of compressed images.

Inside the library a :class:`~repro.core.lat.CompressedImage` carries its
decoder model (Markov tables / dictionary / Huffman codes) as live
objects.  This module defines the standalone byte format — what would
actually be burned into an embedded system's memory next to the LAT and
the compressed code — and rebuilds a fully decompressible image from it.

Layout (all integers big-endian)::

    "RCC1" | algo u8 | original u32 | block_size u16 | model_bytes u32
    n_blocks u32 | n_blocks x (payload size u16)
    <model section, per algorithm>
    <payload blocks, concatenated>

The format is versioned by the magic; unknown algorithm ids or truncated
sections raise :class:`SerializationError`.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.lat import CompressedImage, original_block_count
from repro.core.samc.model import SamcModel
from repro.entropy.arith import PROB_ONE
from repro.entropy.huffman import HuffmanCode, canonical_codewords
from repro.resilience.errors import (
    CATEGORY_BUDGET,
    CATEGORY_STRUCTURE,
    CATEGORY_TRUNCATED,
    CorruptedStreamError,
    decode_guard,
)
from repro.resilience.frame import framing_enabled, is_framed, unwrap_frame, wrap_frame

MAGIC = b"RCC1"

ALGO_SAMC = 1
ALGO_SADC_MIPS = 2
ALGO_SADC_X86 = 3
ALGO_BYTE_HUFFMAN = 4

_PROB_MODES = {"full": 0, "full16": 1, "pow2": 2}
_PROB_MODE_NAMES = {v: k for k, v in _PROB_MODES.items()}


class SerializationError(CorruptedStreamError):
    """Raised for malformed or truncated serialised images.

    A :class:`CorruptedStreamError` (and therefore a ``ValueError``)
    carrying the byte offset and corruption category of the failure.
    """


class _Writer:
    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def u8(self, value: int) -> None:
        self._parts.append(struct.pack(">B", value))

    def u16(self, value: int) -> None:
        self._parts.append(struct.pack(">H", value))

    def u32(self, value: int) -> None:
        self._parts.append(struct.pack(">I", value))

    def raw(self, data: bytes) -> None:
        self._parts.append(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def offset(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise SerializationError(
                "truncated image",
                offset=self._pos,
                category=CATEGORY_TRUNCATED,
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def check_budget(self, items: int, bytes_per_item: int, what: str) -> None:
        """Reject a declared count the remaining bytes cannot satisfy.

        Every variable-length section states its element count up front;
        validating the count against the bytes actually present bounds
        all allocations by ``len(data)`` — a corrupted header cannot ask
        for gigabytes.
        """
        if items * bytes_per_item > self.remaining:
            raise SerializationError(
                f"{what}: {items} declared entries need at least "
                f"{items * bytes_per_item} bytes, only {self.remaining} left",
                offset=self._pos,
                category=CATEGORY_BUDGET,
            )

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def raw(self, count: int) -> bytes:
        return self._take(count)


# -- probability coding -----------------------------------------------------

def _encode_probability(writer: _Writer, q: int, mode: str) -> None:
    if mode == "full":
        writer.u8(q >> 8)
    elif mode == "full16":
        writer.u16(q)
    else:  # pow2: 1 side bit + 5-bit exponent
        half = 1 << 15
        side = 1 if q > half else 0
        lps = (1 << 16) - q if side else q
        exponent = 16 - (lps.bit_length() - 1)
        writer.u8((side << 7) | exponent)


def _decode_probability(reader: _Reader, mode: str) -> int:
    if mode == "full":
        return reader.u8() << 8
    if mode == "full16":
        return reader.u16()
    byte = reader.u8()
    side = byte >> 7
    lps = (1 << 16) >> (byte & 0x1F)
    return ((1 << 16) - lps) if side else lps


# -- Huffman tables -----------------------------------------------------------

def _write_huffman(writer: _Writer, code: HuffmanCode) -> None:
    writer.u16(len(code.lengths))
    for symbol in sorted(code.lengths):
        writer.u32(symbol)
        writer.u8(code.lengths[symbol])


def _read_huffman(reader: _Reader) -> HuffmanCode:
    count = reader.u16()
    reader.check_budget(count, 5, "Huffman table")
    lengths: Dict[int, int] = {}
    for _ in range(count):
        symbol = reader.u32()
        length = reader.u8()
        if length == 0:
            raise SerializationError(
                f"Huffman symbol {symbol} declares a zero-length codeword",
                offset=reader.offset - 1,
                category=CATEGORY_STRUCTURE,
            )
        lengths[symbol] = length
    return HuffmanCode(lengths=lengths, codewords=canonical_codewords(lengths))


# -- SAMC model ----------------------------------------------------------------

def _write_samc_model(writer: _Writer, image: CompressedImage) -> None:
    model: SamcModel = image.metadata["model"]
    mode = image.metadata["probability_mode"]
    writer.u8(model.width)
    writer.u8(len(model.specs))
    writer.u8(model.connect_bits)
    writer.u8(_PROB_MODES[mode])
    for spec in model.specs:
        writer.u8(spec.k)
        for position in spec.positions:
            writer.u8(position)
    for stream_model in model.stream_models:
        table = stream_model.frozen_table
        for context in range(stream_model.contexts):
            for node in range(stream_model.node_count):
                _encode_probability(writer, int(table[context, node]), mode)


#: Bytes one stored probability occupies per coding mode.
_PROB_MODE_BYTES = {"full": 1, "full16": 2, "pow2": 1}

#: Largest inter-stream connection order the format accepts (2**16
#: tree replicas); a corrupted u8 would otherwise request ``1 << 255``
#: contexts before a single table byte is read.
_MAX_CONNECT_BITS = 16


def _read_samc_model(reader: _Reader) -> Tuple[SamcModel, str]:
    width = reader.u8()
    n_streams = reader.u8()
    connect_bits = reader.u8()
    mode = _PROB_MODE_NAMES.get(reader.u8())
    if mode is None:
        raise SerializationError(
            "unknown probability mode",
            offset=reader.offset - 1,
            category=CATEGORY_STRUCTURE,
        )
    if not 1 <= width <= 64 or width % 8 != 0:
        raise SerializationError(
            f"implausible SAMC word width {width}",
            category=CATEGORY_STRUCTURE,
        )
    if not 1 <= n_streams <= width:
        raise SerializationError(
            f"implausible SAMC stream count {n_streams} for width {width}",
            category=CATEGORY_STRUCTURE,
        )
    if connect_bits > _MAX_CONNECT_BITS:
        raise SerializationError(
            f"connect_bits {connect_bits} exceeds the format maximum "
            f"{_MAX_CONNECT_BITS}",
            category=CATEGORY_STRUCTURE,
        )
    streams = []
    for _ in range(n_streams):
        k = reader.u8()
        if not 1 <= k <= width:
            raise SerializationError(
                f"implausible stream size {k} for width {width}",
                offset=reader.offset - 1,
                category=CATEGORY_STRUCTURE,
            )
        streams.append(tuple(reader.u8() for _ in range(k)))
    tables = []
    contexts = 1 << connect_bits
    prob_bytes = _PROB_MODE_BYTES[mode]
    for stream in streams:
        nodes = (1 << len(stream)) - 1
        reader.check_budget(contexts * nodes, prob_bytes, "SAMC table")
        table = np.zeros((contexts, nodes), dtype=np.int64)
        for context in range(contexts):
            for node in range(nodes):
                table[context, node] = _decode_probability(reader, mode)
        # A probability of 0 (or PROB_ONE) collapses one half of the
        # range coder's interval, which the decode loop would spin on
        # forever — reject untrusted tables here, at the boundary.
        if table.size and (table.min() < 1 or table.max() > PROB_ONE - 1):
            raise SerializationError(
                "SAMC probability table holds values outside "
                f"[1, {PROB_ONE - 1}]",
                offset=reader.offset,
                category=CATEGORY_STRUCTURE,
            )
        tables.append(table)
    try:
        model = SamcModel.from_frozen(width, streams, connect_bits, tables)
    except CorruptedStreamError:
        raise
    except ValueError as error:  # bad stream partition, wrong table shape
        raise SerializationError(
            f"inconsistent SAMC model: {error}",
            category=CATEGORY_STRUCTURE,
        ) from error
    return model, mode


# -- SADC models ----------------------------------------------------------------

_MIPS_CODE_KEYS = ("tokens", "regs", "imm16_hi", "imm16_lo",
                   "imm26_hi", "imm26_lo")
_X86_CODE_KEYS = ("tokens", "modrm_sib", "imm_disp")


def _write_sadc_mips_model(writer: _Writer, image: CompressedImage) -> None:
    from repro.core.sadc.entry import Dictionary

    dictionary: Dictionary = image.metadata["dictionary"]
    writer.u16(len(dictionary))
    for entry in dictionary.entries:
        writer.u8(len(entry.opcodes))
        for opcode in entry.opcodes:
            writer.u8(opcode)
        writer.u8(len(entry.bound_regs))
        for instr, slot, value in entry.bound_regs:
            writer.u8(instr)
            writer.u8(slot)
            writer.u8(value)
        writer.u8(len(entry.bound_imm16))
        for instr, value in entry.bound_imm16:
            writer.u8(instr)
            writer.u16(value)
        writer.u8(len(entry.bound_imm26))
        for instr, value in entry.bound_imm26:
            writer.u8(instr)
            writer.u32(value)
    for key in _MIPS_CODE_KEYS:
        _write_huffman(writer, image.metadata["codes"][key])


def _read_sadc_mips_model(reader: _Reader) -> Tuple[object, Dict[str, HuffmanCode]]:
    from repro.core.sadc.entry import DictEntry, Dictionary

    count = reader.u16()
    reader.check_budget(count, 4, "SADC dictionary")
    dictionary = Dictionary(max_entries=max(256, count))
    for index in range(count):
        opcodes = tuple(reader.u8() for _ in range(reader.u8()))
        if not opcodes:
            raise SerializationError(
                f"dictionary entry {index} declares zero opcodes",
                offset=reader.offset,
                category=CATEGORY_STRUCTURE,
            )
        regs = tuple(
            (reader.u8(), reader.u8(), reader.u8())
            for _ in range(reader.u8())
        )
        imm16 = tuple((reader.u8(), reader.u16()) for _ in range(reader.u8()))
        imm26 = tuple((reader.u8(), reader.u32()) for _ in range(reader.u8()))
        dictionary.add(DictEntry(opcodes, regs, imm16, imm26))
    codes = {key: _read_huffman(reader) for key in _MIPS_CODE_KEYS}
    return dictionary, codes


def _write_sadc_x86_model(writer: _Writer, image: CompressedImage) -> None:
    dictionary = image.metadata["dictionary"]
    writer.u16(len(dictionary))
    for entry in dictionary.entries:
        writer.u8(len(entry))
        for part in entry:
            writer.u8(len(part))
            writer.raw(part)
    for key in _X86_CODE_KEYS:
        _write_huffman(writer, image.metadata["codes"][key])
    counts = image.metadata["block_instruction_counts"]
    writer.u32(len(counts))
    for value in counts:
        writer.u16(value)


def _read_sadc_x86_model(reader: _Reader):
    from repro.core.sadc.x86 import X86Dictionary

    count = reader.u16()
    reader.check_budget(count, 2, "SADC x86 dictionary")
    dictionary = X86Dictionary(max_entries=max(256, count))
    for index in range(count):
        parts = tuple(
            reader.raw(reader.u8()) for _ in range(reader.u8())
        )
        if not parts or not all(parts):
            raise SerializationError(
                f"x86 dictionary entry {index} holds an empty opcode string",
                offset=reader.offset,
                category=CATEGORY_STRUCTURE,
            )
        dictionary.add(parts)
    codes = {key: _read_huffman(reader) for key in _X86_CODE_KEYS}
    n_counts = reader.u32()
    reader.check_budget(n_counts, 2, "block instruction counts")
    counts = [reader.u16() for _ in range(n_counts)]
    return dictionary, codes, counts


# -- public API -------------------------------------------------------------------

def _algorithm_id(image: CompressedImage) -> int:
    if image.algorithm == "SAMC":
        return ALGO_SAMC
    if image.algorithm == "SADC":
        return ALGO_SADC_MIPS if image.metadata.get("isa") == "mips" \
            else ALGO_SADC_X86
    if image.algorithm == "byte-huffman":
        return ALGO_BYTE_HUFFMAN
    raise SerializationError(f"cannot serialise algorithm {image.algorithm!r}")


# repro: contract determinism-sink
def serialize_image(image: CompressedImage, framed: Optional[bool] = None) -> bytes:
    """Serialise a compressed image to its standalone byte format.

    ``framed=True`` wraps the archive in the resilience container
    (:mod:`repro.resilience.frame`: magic, version, length, CRC-32) so
    any corruption is detected before deserialisation begins.  The
    default follows the ``REPRO_FRAMED`` environment switch and is off —
    raw archives stay byte-identical with pre-framing releases.
    """
    if framed is None:
        framed = framing_enabled()
    writer = _Writer()
    writer.raw(MAGIC)
    algo = _algorithm_id(image)
    writer.u8(algo)
    writer.u32(image.original_size)
    writer.u16(image.block_size)
    writer.u32(image.model_bytes)
    writer.u32(len(image.blocks))
    for block in image.blocks:
        if len(block) > 0xFFFF:
            raise SerializationError("block payload exceeds format limit")
        writer.u16(len(block))
    if algo == ALGO_SAMC:
        _write_samc_model(writer, image)
    elif algo == ALGO_SADC_MIPS:
        _write_sadc_mips_model(writer, image)
    elif algo == ALGO_SADC_X86:
        _write_sadc_x86_model(writer, image)
    else:
        _write_huffman(writer, image.metadata["code"])
    for block in image.blocks:
        writer.raw(block)
    archive = writer.getvalue()
    return wrap_frame(archive) if framed else archive


# repro: contract decode-entry
def deserialize_image(data: bytes) -> CompressedImage:
    """Rebuild a decompressible :class:`CompressedImage` from bytes.

    Framed archives (see :func:`serialize_image`) are detected by their
    magic and CRC-checked before any field is parsed; unframed archives
    parse as before.  All parse failures raise
    :class:`SerializationError` with offset and category.
    """
    with decode_guard("serialize.deserialize_image"):
        if is_framed(data):
            try:
                data = unwrap_frame(data)
            except SerializationError:
                raise
            except CorruptedStreamError as error:
                # Uniform contract: every deserialize_image failure is a
                # SerializationError, framed or not.
                raise SerializationError(
                    f"bad archive frame: {error.args[0]}",
                    offset=error.offset,
                    category=error.category,
                ) from error
        return _deserialize_archive(data)


def _deserialize_archive(data: bytes) -> CompressedImage:
    reader = _Reader(data)
    if reader.raw(4) != MAGIC:
        raise SerializationError(
            "bad magic", offset=0, category=CATEGORY_STRUCTURE
        )
    algo = reader.u8()
    original_size = reader.u32()
    block_size = reader.u16()
    model_bytes = reader.u32()
    n_blocks = reader.u32()
    reader.check_budget(n_blocks, 2, "block size table")
    # The block count is implied by the header: a forged count would
    # send block decoders past the original image (raw IndexError) or
    # silently drop blocks.  Enforce consistency at this boundary.
    if block_size == 0:
        raise SerializationError(
            "block size is zero", category=CATEGORY_STRUCTURE
        )
    expected_blocks = original_block_count(original_size, block_size)
    if n_blocks != expected_blocks:
        raise SerializationError(
            f"archive declares {n_blocks} blocks but {original_size} bytes "
            f"at block size {block_size} require {expected_blocks}",
            category=CATEGORY_STRUCTURE,
        )
    sizes = [reader.u16() for _ in range(n_blocks)]

    if algo == ALGO_SAMC:
        model, mode = _read_samc_model(reader)
        metadata = {
            "model": model,
            "word_bits": model.width,
            "streams": model.specs,
            "connect_bits": model.connect_bits,
            "probability_mode": mode,
        }
        algorithm = "SAMC"
    elif algo == ALGO_SADC_MIPS:
        dictionary, codes = _read_sadc_mips_model(reader)
        metadata = {"isa": "mips", "dictionary": dictionary, "codes": codes}
        algorithm = "SADC"
    elif algo == ALGO_SADC_X86:
        dictionary, codes, counts = _read_sadc_x86_model(reader)
        metadata = {
            "isa": "x86", "dictionary": dictionary, "codes": codes,
            "block_instruction_counts": counts,
        }
        algorithm = "SADC"
    elif algo == ALGO_BYTE_HUFFMAN:
        code = _read_huffman(reader)
        # Huffman tables are generic u32-symbol maps (SADC token streams
        # need that), but this table decodes to raw bytes.
        bad = [s for s in code.lengths if not 0 <= s <= 0xFF]
        if bad:
            raise SerializationError(
                f"byte-Huffman table holds non-byte symbol {bad[0]}",
                offset=reader.offset,
                category=CATEGORY_STRUCTURE,
            )
        metadata = {"code": code}
        algorithm = "byte-huffman"
    else:
        raise SerializationError(f"unknown algorithm id {algo}")

    blocks = [reader.raw(size) for size in sizes]
    return CompressedImage(
        algorithm=algorithm,
        original_size=original_size,
        block_size=block_size,
        blocks=blocks,
        model_bytes=model_bytes,
        metadata=metadata,
    )


def save_image(image: CompressedImage, path: str) -> int:
    """Write a serialised image to disk; returns the byte count."""
    data = serialize_image(image)
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)


def load_image(path: str) -> CompressedImage:
    """Read a serialised image from disk."""
    with open(path, "rb") as handle:
        return deserialize_image(handle.read())
