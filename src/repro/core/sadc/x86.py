"""SADC for x86: dictionary compression over the three byte streams.

The Pentium configuration in Section 5: instructions split into
**opcode** (prefixes + opcode bytes), **ModRM + SIB**, and
**immediate + displacement** streams, all byte-wide.  The dictionary
covers the opcode stream; because x86 opcode entries are variable-length
byte strings, a base symbol here is the whole prefixes+opcode byte string
of one instruction.  Groups combine adjacent instructions' opcode
entries.  Register/immediate binding does not apply (registers live in
ModRM, which stays a separate stream) — one reason the paper's x86
ratios trail its MIPS ratios.

Block handling: an instruction belongs to the cache block in which it
*starts*.  Real hardware would decompress exactly 32 original bytes per
block (splitting an instruction across blocks); assigning whole
instructions to blocks preserves the same random-access granularity
while keeping the streams well-formed, and changes per-block sizes by at
most one instruction.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.bitstream.io import BitReader, BitWriter
from repro.core.lat import CompressedImage
from repro.entropy.huffman import (
    HuffmanCode,
    HuffmanDecoder,
    HuffmanEncoder,
    build_code,
)
from repro.isa.x86.formats import X86Instruction, decode_all
from repro.obs import get_recorder
from repro.resilience.errors import (
    CATEGORY_BUDGET,
    CATEGORY_STRUCTURE,
    CorruptedStreamError,
    decode_guard,
)
from repro.resilience.frame import block_payload

DEFAULT_BLOCK_SIZE = 32

#: A dictionary entry: a tuple of opcode-entry byte strings.
X86Entry = Tuple[bytes, ...]


def _entry_storage_bits(entry: X86Entry) -> int:
    """Dictionary storage: the raw bytes plus a 2-bit length tag each."""
    return sum(8 * len(part) + 2 for part in entry)


class X86Dictionary:
    """Capacity-limited dictionary over opcode-entry strings."""

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self.entries: List[X86Entry] = []
        self._known: Dict[X86Entry, int] = {}
        self._by_first: Dict[bytes, List[int]] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, entry: X86Entry) -> bool:
        return entry in self._known

    @property
    def is_full(self) -> bool:
        return len(self.entries) >= self.max_entries

    def add(self, entry: X86Entry) -> int:
        if entry in self._known:
            return self._known[entry]
        if self.is_full:
            raise ValueError("dictionary is full")
        index = len(self.entries)
        self.entries.append(entry)
        self._known[entry] = index
        bucket = self._by_first.setdefault(entry[0], [])
        bucket.append(index)
        bucket.sort(key=lambda i: len(self.entries[i]), reverse=True)
        return index

    def candidates_starting_with(self, first: bytes) -> List[int]:
        return self._by_first.get(first, [])

    @property
    def storage_bits(self) -> int:
        return sum(_entry_storage_bits(entry) for entry in self.entries)


def _opcode_entry(instruction: X86Instruction) -> bytes:
    return instruction.prefixes + instruction.opcode


def parse_block(
    dictionary: X86Dictionary, entries_in_block: Sequence[bytes]
) -> List[int]:
    """Greedy longest-match parse of one block's opcode entries."""
    tokens: List[int] = []
    pos = 0
    while pos < len(entries_in_block):
        chosen = None
        for index in dictionary.candidates_starting_with(entries_in_block[pos]):
            entry = dictionary.entries[index]
            if pos + len(entry) <= len(entries_in_block) and all(
                entry[j] == entries_in_block[pos + j] for j in range(len(entry))
            ):
                chosen = index
                break
        if chosen is None:
            raise ValueError("no dictionary entry matches — seed singles first")
        tokens.append(chosen)
        pos += len(dictionary.entries[chosen])
    return tokens


class X86SadcCodec:
    """SADC compressor/decompressor for x86 code images."""

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        max_entries: int = 256,
        batch_inserts: int = 8,
        max_cycles: int = 64,
        max_group_tokens: int = 3,
    ) -> None:
        self.block_size = block_size
        self.max_entries = max_entries
        self.batch_inserts = max(1, batch_inserts)
        self.max_cycles = max_cycles
        self.max_group_tokens = max_group_tokens

    # -- decomposition --------------------------------------------------

    def _decode_blocks(self, code: bytes) -> List[List[X86Instruction]]:
        """Instructions grouped by the block where each one starts."""
        instructions = decode_all(code)
        block_count = max(1, (len(code) + self.block_size - 1) // self.block_size)
        blocks: List[List[X86Instruction]] = [[] for _ in range(block_count)]
        offset = 0
        for instruction in instructions:
            blocks[offset // self.block_size].append(instruction)
            offset += instruction.length
        return blocks

    # -- dictionary generation -------------------------------------------

    def build_dictionary(
        self, blocks: Sequence[Sequence[X86Instruction]]
    ) -> X86Dictionary:
        dictionary = X86Dictionary(self.max_entries)
        per_block_entries = [
            [_opcode_entry(i) for i in block] for block in blocks
        ]
        for entries in per_block_entries:
            for entry_bytes in entries:
                single = (entry_bytes,)
                if single not in dictionary and not dictionary.is_full:
                    dictionary.add(single)

        for _cycle in range(self.max_cycles):
            if dictionary.is_full:
                break
            parses = [
                parse_block(dictionary, entries) for entries in per_block_entries
            ]
            pair_counts: Counter = Counter()
            triple_counts: Counter = Counter()
            for tokens in parses:
                for i in range(len(tokens) - 1):
                    pair_counts[(tokens[i], tokens[i + 1])] += 1
                if self.max_group_tokens >= 3:
                    for i in range(len(tokens) - 2):
                        triple_counts[(tokens[i], tokens[i + 1], tokens[i + 2])] += 1
            scored: List[Tuple[int, X86Entry]] = []
            for (a, b), f in pair_counts.items():
                entry = dictionary.entries[a] + dictionary.entries[b]
                scored.append((f * 8 - _entry_storage_bits(entry), entry))
            for (a, b, c), f in triple_counts.items():
                entry = (
                    dictionary.entries[a]
                    + dictionary.entries[b]
                    + dictionary.entries[c]
                )
                scored.append((f * 16 - _entry_storage_bits(entry), entry))
            scored.sort(key=lambda item: item[0], reverse=True)
            inserted = 0
            for gain, entry in scored:
                if gain <= 0 or dictionary.is_full:
                    break
                if entry in dictionary:
                    continue
                dictionary.add(entry)
                inserted += 1
                if inserted >= self.batch_inserts:
                    break
            if inserted == 0:
                break
        return dictionary

    # -- coding -----------------------------------------------------------

    def _encode_block_instrumented(self, rec, codes, block, tokens) -> bytes:
        """Obs-on block encode: identical writes to the inline loop in
        :meth:`compress`, with ``writer.bit_length`` deltas charged to
        the ``tokens`` / ``modrm_sib`` / ``imm_disp`` streams."""
        writer = BitWriter()
        token_encoder = HuffmanEncoder(codes["tokens"])
        modrm_encoder = HuffmanEncoder(codes["modrm_sib"])
        imm_encoder = HuffmanEncoder(codes["imm_disp"])
        mark = writer.bit_length
        token_encoder.encode_to(writer, tokens)
        token_bits = writer.bit_length - mark
        modrm_bits = 0
        imm_bits = 0
        for instruction in block:
            mark = writer.bit_length
            if instruction.modrm is not None:
                modrm_encoder.encode_to(writer, [instruction.modrm])
            if instruction.sib is not None:
                modrm_encoder.encode_to(writer, [instruction.sib])
            modrm_bits += writer.bit_length - mark
            mark = writer.bit_length
            imm_encoder.encode_to(writer, list(instruction.disp))
            imm_encoder.encode_to(writer, list(instruction.imm))
            imm_bits += writer.bit_length - mark
        payload = writer.getvalue()
        if token_bits:
            rec.add_bits("tokens", token_bits)
        if modrm_bits:
            rec.add_bits("modrm_sib", modrm_bits)
        if imm_bits:
            rec.add_bits("imm_disp", imm_bits)
        pad = len(payload) * 8 - writer.bit_length
        if pad:
            rec.add_bits("padding", pad)
        rec.count("sadc.tokens_emitted", len(tokens))
        rec.count("sadc.blocks_encoded")
        return payload

    def compress(self, code: bytes) -> CompressedImage:
        rec = get_recorder()
        blocks = self._decode_blocks(code)
        with rec.span("sadc.build_dictionary", isa="x86"):
            dictionary = self.build_dictionary(blocks)
        per_block_entries = [
            [_opcode_entry(i) for i in block] for block in blocks
        ]
        parses = [
            parse_block(dictionary, entries) for entries in per_block_entries
        ]

        token_counts: Counter = Counter()
        modrm_counts: Counter = Counter()
        imm_counts: Counter = Counter()
        for block, tokens in zip(blocks, parses):
            token_counts.update(tokens)
            for instruction in block:
                if instruction.modrm is not None:
                    modrm_counts[instruction.modrm] += 1
                if instruction.sib is not None:
                    modrm_counts[instruction.sib] += 1
                imm_counts.update(instruction.disp)
                imm_counts.update(instruction.imm)
        codes = {
            "tokens": build_code(token_counts),
            "modrm_sib": build_code(modrm_counts),
            "imm_disp": build_code(imm_counts),
        }

        if rec.enabled:
            with rec.span("sadc.encode", isa="x86"):
                payload = [
                    self._encode_block_instrumented(rec, codes, block, tokens)
                    for block, tokens in zip(blocks, parses)
                ]
        else:
            payload = []
            for block, tokens in zip(blocks, parses):
                writer = BitWriter()
                token_encoder = HuffmanEncoder(codes["tokens"])
                modrm_encoder = HuffmanEncoder(codes["modrm_sib"])
                imm_encoder = HuffmanEncoder(codes["imm_disp"])
                token_encoder.encode_to(writer, tokens)
                for instruction in block:
                    if instruction.modrm is not None:
                        modrm_encoder.encode_to(writer, [instruction.modrm])
                    if instruction.sib is not None:
                        modrm_encoder.encode_to(writer, [instruction.sib])
                    imm_encoder.encode_to(writer, list(instruction.disp))
                    imm_encoder.encode_to(writer, list(instruction.imm))
                payload.append(writer.getvalue())

        model_bits = (
            dictionary.storage_bits
            + codes["tokens"].table_bits(8)
            + codes["modrm_sib"].table_bits(8)
            + codes["imm_disp"].table_bits(8)
        )
        image = CompressedImage(
            algorithm="SADC",
            original_size=len(code),
            block_size=self.block_size,
            blocks=payload,
            model_bytes=(model_bits + 7) // 8,
            metadata={
                "isa": "x86",
                "dictionary": dictionary,
                "codes": codes,
                "block_instruction_counts": [len(b) for b in blocks],
            },
        )
        if rec.enabled:
            rec.add_bits("model.dictionary", dictionary.storage_bits)
            rec.add_bits("model.tables", model_bits - dictionary.storage_bits)
            model_pad = image.model_bytes * 8 - model_bits
            if model_pad:
                rec.add_bits("model.pad", model_pad)
            rec.add_bits("lat", image.compact_lat.storage_bytes * 8)
            rec.gauge("sadc.dictionary_entries", len(dictionary.entries))
        return image

    # repro: contract decode-entry
    def decompress(self, image: CompressedImage) -> bytes:
        return b"".join(
            self.decompress_blocks(image, range(image.block_count()))
        )

    # repro: contract decode-entry
    def decompress_blocks(
        self, image: CompressedImage, indices
    ) -> List[bytes]:
        """Batch form of :meth:`decompress_block` (uniform batch API).

        x86 reassembly is grammar-driven and has no vectorised kernel;
        the batch is simply the per-block loop.
        """
        return [self.decompress_block(image, index) for index in indices]

    def decompress_block(self, image: CompressedImage, block_index: int) -> bytes:
        """Expand one block back into instruction bytes.

        The token stream is decoded first; each token expands to
        prefixes+opcode strings whose grammar then dictates how many
        ModRM/SIB and disp/imm bytes to pull from the operand streams —
        the software mirror of the paper's control-logic unit.
        """
        from repro.core.sadc.x86_reassemble import reassemble_instruction

        dictionary: X86Dictionary = image.metadata["dictionary"]
        codes: Dict[str, HuffmanCode] = image.metadata["codes"]
        with decode_guard("sadc.x86.decompress_block"):
            expected = image.metadata["block_instruction_counts"][block_index]
            if expected > image.block_size:
                # The per-block instruction count is a wire-declared
                # u16; x86 instructions are at least one byte, so a
                # count beyond block_size is a forged length that would
                # otherwise drive allocation before the reader runs dry.
                raise CorruptedStreamError(
                    f"block {block_index} declares {expected} instructions "
                    f"for a {image.block_size}-byte block",
                    category=CATEGORY_BUDGET,
                )
            reader = BitReader(block_payload(image, block_index))
            token_decoder = HuffmanDecoder(codes["tokens"])
            modrm_decoder = HuffmanDecoder(codes["modrm_sib"])
            imm_decoder = HuffmanDecoder(codes["imm_disp"])

            opcode_entries: List[bytes] = []
            while len(opcode_entries) < expected:
                token = token_decoder.decode_from(reader, 1)[0]
                expansion = dictionary.entries[token]
                if not expansion or not all(expansion):
                    # A token must expand to at least one non-empty
                    # opcode string or the loop cannot advance; only a
                    # corrupted deserialised dictionary gets here.
                    raise CorruptedStreamError(
                        f"dictionary entry {token} is empty",
                        category=CATEGORY_STRUCTURE,
                    )
                opcode_entries.extend(expansion)
            if len(opcode_entries) != expected:
                raise ValueError(
                    f"block {block_index}: group crossed block boundary"
                )
            out = bytearray()
            for entry_bytes in opcode_entries:
                instruction = reassemble_instruction(
                    entry_bytes,
                    lambda: modrm_decoder.decode_from(reader, 1)[0],
                    lambda n: bytes(imm_decoder.decode_from(reader, n)),
                )
                out.extend(instruction.encode())
            return bytes(out)
