"""Instruction reassembly for the x86 SADC decompressor.

Given one instruction's prefixes+opcode bytes and callbacks that supply
the next ModRM/SIB byte and the next *n* imm/disp bytes, rebuild the full
:class:`~repro.isa.x86.formats.X86Instruction`.  This is the software
model of the control-logic unit in the paper's decompressor block
diagram: the opcode grammar plus the ModRM byte fully determine how many
bytes each operand stream contributes.
"""

from __future__ import annotations

from typing import Callable

from repro.isa.x86.formats import (
    IMM_NONE,
    ONE_BYTE_TABLE,
    OPERAND_SIZE_PREFIX,
    TWO_BYTE_TABLE,
    X86Instruction,
    _disp_size,
    _imm_size,
    modrm_fields,
)


def split_opcode_entry(entry: bytes) -> tuple:
    """Split a prefixes+opcode byte string into (prefixes, opcode)."""
    if len(entry) >= 2 and entry[-2] == 0x0F:
        return entry[:-2], entry[-2:]
    return entry[:-1], entry[-1:]


def reassemble_instruction(
    entry: bytes,
    next_modrm_byte: Callable[[], int],
    next_imm_bytes: Callable[[int], bytes],
) -> X86Instruction:
    """Rebuild one instruction from its opcode entry and operand streams."""
    prefixes, opcode = split_opcode_entry(entry)
    if len(opcode) == 2:
        info = TWO_BYTE_TABLE[opcode[1]]
    else:
        info = ONE_BYTE_TABLE[opcode[0]]

    modrm = None
    sib = None
    if info.has_modrm:
        modrm = next_modrm_byte()
        mod, _reg, rm = modrm_fields(modrm)
        if mod != 3 and rm == 4:
            sib = next_modrm_byte()

    mod, reg, rm = modrm_fields(modrm) if modrm is not None else (3, 0, 0)
    disp_len = _disp_size(mod, rm, sib) if modrm is not None else 0
    imm_kind = info.imm
    if info.imm_by_reg is not None:
        imm_kind = info.imm_by_reg.get(reg, IMM_NONE)
    imm_len = _imm_size(imm_kind, OPERAND_SIZE_PREFIX in prefixes)

    disp = next_imm_bytes(disp_len) if disp_len else b""
    imm = next_imm_bytes(imm_len) if imm_len else b""
    return X86Instruction(
        prefixes=bytes(prefixes),
        opcode=bytes(opcode),
        modrm=modrm,
        sib=sib,
        disp=disp,
        imm=imm,
    )
