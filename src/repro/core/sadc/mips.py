"""SADC for MIPS: dictionary compression over the four operand streams.

Pipeline (Section 4 of the paper):

1. Decode the program into instruction records; split the streams
   (opcode / register / 16-bit immediate / 26-bit immediate).
2. **Dictionary generation + parsing** — start from all single opcodes;
   repeatedly re-parse the program with the current dictionary, gather
   candidates (adjacent token pairs and triples; register-value and
   immediate-value specialisations), insert those with the largest gain,
   until the 256-entry cap or no positive gain remains.
3. **Final entropy coding** — Huffman-code the dictionary-index stream
   and the surviving operand streams ("The final step of our compression
   is to encode all resulting compressed streams by using Huffman
   encoding").

Every cache block parses and encodes independently: dictionary groups
never cross block boundaries, so the refill engine can expand any block
in isolation.

Deviations from the paper, both documented in DESIGN.md:

* Gains are computed in *bits* with the true current token count
  (``g = f·(t−1)·8 − entry_storage``) rather than the paper's byte
  approximation ``g = f(n−1) − n``; same greedy spirit, slightly more
  accurate bookkeeping.
* Instead of erasing and regrowing the dictionary each cycle, we keep it
  and re-parse — equivalent outcome, far fewer passes; a
  ``batch_inserts`` knob trades generator fidelity for speed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bitstream.fields import chunk_words, words_to_bytes
from repro.bitstream.io import BitReader, BitWriter
from repro.core.lat import CompressedImage
from repro.core.sadc.entry import DictEntry, Dictionary
from repro.entropy.huffman import (
    HuffmanCode,
    HuffmanDecoder,
    HuffmanEncoder,
    build_code,
)
from repro.isa.mips.formats import Instruction, decode
from repro.isa.mips.streams import (
    ID_TO_SPEC,
    OPCODE_IDS,
    register_slots,
    uses_imm16,
    uses_imm26,
)
from repro.obs import get_recorder
from repro.resilience.errors import (
    CATEGORY_STRUCTURE,
    CorruptedStreamError,
    decode_guard,
)
from repro.resilience.frame import block_payload

DEFAULT_BLOCK_SIZE = 32


@dataclass(frozen=True)
class InstrRec:
    """One instruction, pre-split into SADC stream components."""

    opcode_id: int
    regs: Tuple[int, ...]
    imm16: Optional[int]
    imm26: Optional[int]

    @classmethod
    def from_word(cls, word: int) -> "InstrRec":
        instruction = decode(word)
        spec = instruction.spec
        regs = tuple(
            getattr(instruction, slot) for slot in register_slots(spec)
        )
        rec = cls(
            opcode_id=OPCODE_IDS[spec.mnemonic],
            regs=regs,
            imm16=instruction.imm if uses_imm16(spec) else None,
            imm26=instruction.target if uses_imm26(spec) else None,
        )
        # The stream split only keeps fields the opcode declares; a word
        # with stray bits in undeclared fields would not survive the
        # round trip, so reject it up front rather than corrupt silently.
        if rec.to_word() != word:
            raise ValueError(
                f"word {word:#010x} ({spec.mnemonic}) is non-canonical: "
                "it sets fields the opcode does not encode"
            )
        return rec

    def to_word(self) -> int:
        spec = ID_TO_SPEC[self.opcode_id]
        fields = {"rs": 0, "rt": 0, "rd": 0, "shamt": 0, "imm": 0, "target": 0}
        for slot, value in zip(register_slots(spec), self.regs):
            fields[slot] = value
        if self.imm16 is not None:
            fields["imm"] = self.imm16
        if self.imm26 is not None:
            fields["target"] = self.imm26
        return Instruction(spec, **fields).encode()


#: A parsed token: (dictionary index, start position in the block).
ParsedToken = Tuple[int, int]


def _entry_matches(entry: DictEntry, instrs: Sequence[InstrRec], pos: int) -> bool:
    if pos + entry.length > len(instrs):
        return False
    for j, opcode in enumerate(entry.opcodes):
        rec = instrs[pos + j]
        if rec.opcode_id != opcode:
            return False
    for j, slot, value in entry.bound_regs:
        if instrs[pos + j].regs[slot] != value:
            return False
    for j, value in entry.bound_imm16:
        if instrs[pos + j].imm16 != value:
            return False
    for j, value in entry.bound_imm26:
        if instrs[pos + j].imm26 != value:
            return False
    return True


def parse_block(
    dictionary: Dictionary, instrs: Sequence[InstrRec]
) -> List[ParsedToken]:
    """Greedy longest-match parse of one block's instructions."""
    tokens: List[ParsedToken] = []
    pos = 0
    while pos < len(instrs):
        chosen = None
        for index in dictionary.candidates_starting_with(instrs[pos].opcode_id):
            if _entry_matches(dictionary.entries[index], instrs, pos):
                chosen = index
                break
        if chosen is None:
            raise ValueError(
                f"no dictionary entry matches opcode id "
                f"{instrs[pos].opcode_id} — singles must be seeded first"
            )
        tokens.append((chosen, pos))
        pos += dictionary.entries[chosen].length
    return tokens


class MipsSadcCodec:
    """SADC compressor/decompressor for MIPS code images."""

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        max_entries: int = 256,
        batch_inserts: int = 8,
        max_cycles: int = 64,
        enable_groups: bool = True,
        enable_reg_binding: bool = True,
        enable_imm_binding: bool = True,
        max_group_tokens: int = 3,
    ) -> None:
        if block_size % 4 != 0:
            raise ValueError("block_size must hold whole MIPS instructions")
        self.block_size = block_size
        self.max_entries = max_entries
        self.batch_inserts = max(1, batch_inserts)
        self.max_cycles = max_cycles
        self.enable_groups = enable_groups
        self.enable_reg_binding = enable_reg_binding
        self.enable_imm_binding = enable_imm_binding
        self.max_group_tokens = max_group_tokens

    # -- program decomposition ------------------------------------------

    def _decode_blocks(self, code: bytes) -> List[List[InstrRec]]:
        instrs = [InstrRec.from_word(w) for w in chunk_words(code, 4)]
        per_block = self.block_size // 4
        return [
            instrs[i : i + per_block] for i in range(0, len(instrs), per_block)
        ]

    # -- dictionary generation ------------------------------------------

    def build_dictionary(
        self,
        blocks: Sequence[Sequence[InstrRec]],
        seed_all_opcodes: bool = False,
    ) -> Dictionary:
        """Iterative gain-driven dictionary generation (Section 4.1).

        ``seed_all_opcodes`` inserts a single-opcode entry for *every*
        mnemonic in the ISA (not just those observed), which a *static*
        dictionary needs so it can parse programs it was not trained on.
        """
        dictionary = Dictionary(self.max_entries)
        if seed_all_opcodes:
            for opcode_id in ID_TO_SPEC:
                if not dictionary.is_full:
                    dictionary.add(DictEntry(opcodes=(opcode_id,)))
        for block in blocks:
            for rec in block:
                entry = DictEntry(opcodes=(rec.opcode_id,))
                if entry not in dictionary and not dictionary.is_full:
                    dictionary.add(entry)

        for _cycle in range(self.max_cycles):
            if dictionary.is_full:
                break
            parses = [parse_block(dictionary, block) for block in blocks]
            candidates = self._gather_candidates(dictionary, blocks, parses)
            inserted = 0
            for gain, entry in candidates:
                if gain <= 0 or dictionary.is_full:
                    break
                if entry in dictionary:
                    continue
                dictionary.add(entry)
                inserted += 1
                if inserted >= self.batch_inserts:
                    break
            if inserted == 0:
                break
        return dictionary

    def _gather_candidates(
        self,
        dictionary: Dictionary,
        blocks: Sequence[Sequence[InstrRec]],
        parses: Sequence[Sequence[ParsedToken]],
    ) -> List[Tuple[int, DictEntry]]:
        """Score every candidate insertion, best gain first."""
        entries = dictionary.entries
        pair_counts: Counter = Counter()
        triple_counts: Counter = Counter()
        reg_counts: Counter = Counter()
        imm16_counts: Counter = Counter()
        imm26_counts: Counter = Counter()

        for block, tokens in zip(blocks, parses):
            if self.enable_groups:
                for i in range(len(tokens) - 1):
                    pair_counts[(tokens[i][0], tokens[i + 1][0])] += 1
                if self.max_group_tokens >= 3:
                    for i in range(len(tokens) - 2):
                        triple_counts[
                            (tokens[i][0], tokens[i + 1][0], tokens[i + 2][0])
                        ] += 1
            for index, pos in tokens:
                entry = entries[index]
                for j in range(entry.length):
                    rec = block[pos + j]
                    if self.enable_reg_binding:
                        for slot, value in enumerate(rec.regs):
                            if entry.reg_binding(j, slot) is None:
                                reg_counts[(index, j, slot, value)] += 1
                    if self.enable_imm_binding:
                        if rec.imm16 is not None and entry.imm16_binding(j) is None:
                            imm16_counts[(index, j, rec.imm16)] += 1
                        if rec.imm26 is not None and entry.imm26_binding(j) is None:
                            imm26_counts[(index, j, rec.imm26)] += 1

        scored: List[Tuple[int, DictEntry]] = []
        for (a, b), f in pair_counts.items():
            entry = entries[a].concat(entries[b])
            scored.append((f * 8 - entry.storage_bits, entry))
        for (a, b, c), f in triple_counts.items():
            entry = entries[a].concat(entries[b]).concat(entries[c])
            scored.append((f * 16 - entry.storage_bits, entry))
        for (index, j, slot, value), f in reg_counts.items():
            entry = entries[index].bind_reg(j, slot, value)
            scored.append((f * 5 - entry.storage_bits, entry))
        for (index, j, value), f in imm16_counts.items():
            entry = entries[index].bind_imm16(j, value)
            scored.append((f * 16 - entry.storage_bits, entry))
        for (index, j, value), f in imm26_counts.items():
            entry = entries[index].bind_imm26(j, value)
            scored.append((f * 26 - entry.storage_bits, entry))
        scored.sort(key=lambda item: item[0], reverse=True)
        return scored

    # -- entropy coding ---------------------------------------------------

    def _collect_symbols(
        self,
        dictionary: Dictionary,
        blocks: Sequence[Sequence[InstrRec]],
        parses: Sequence[Sequence[ParsedToken]],
    ) -> Dict[str, Counter]:
        """Final-parse symbol statistics per stream, for Huffman tables."""
        counters = {
            "tokens": Counter(),
            "regs": Counter(),
            "imm16_hi": Counter(),
            "imm16_lo": Counter(),
            "imm26_hi": Counter(),
            "imm26_lo": Counter(),
        }
        for block, tokens in zip(blocks, parses):
            for index, pos in tokens:
                counters["tokens"][index] += 1
                entry = dictionary.entries[index]
                for j in range(entry.length):
                    rec = block[pos + j]
                    for slot, value in enumerate(rec.regs):
                        if entry.reg_binding(j, slot) is None:
                            counters["regs"][value] += 1
                    if rec.imm16 is not None and entry.imm16_binding(j) is None:
                        counters["imm16_hi"][rec.imm16 >> 8] += 1
                        counters["imm16_lo"][rec.imm16 & 0xFF] += 1
                    if rec.imm26 is not None and entry.imm26_binding(j) is None:
                        counters["imm26_hi"][rec.imm26 >> 16] += 1
                        counters["imm26_lo"][(rec.imm26 >> 8) & 0xFF] += 1
                        counters["imm26_lo"][rec.imm26 & 0xFF] += 1
        return counters

    def _encode_block(
        self,
        dictionary: Dictionary,
        codes: Dict[str, HuffmanCode],
        block: Sequence[InstrRec],
        tokens: Sequence[ParsedToken],
    ) -> bytes:
        writer = BitWriter()
        encoders = {name: HuffmanEncoder(code) for name, code in codes.items()}
        for index, pos in tokens:
            encoders["tokens"].encode_to(writer, [index])
            entry = dictionary.entries[index]
            for j in range(entry.length):
                rec = block[pos + j]
                for slot, value in enumerate(rec.regs):
                    if entry.reg_binding(j, slot) is None:
                        encoders["regs"].encode_to(writer, [value])
                if rec.imm16 is not None and entry.imm16_binding(j) is None:
                    encoders["imm16_hi"].encode_to(writer, [rec.imm16 >> 8])
                    encoders["imm16_lo"].encode_to(writer, [rec.imm16 & 0xFF])
                if rec.imm26 is not None and entry.imm26_binding(j) is None:
                    encoders["imm26_hi"].encode_to(writer, [rec.imm26 >> 16])
                    encoders["imm26_lo"].encode_to(writer, [(rec.imm26 >> 8) & 0xFF])
                    encoders["imm26_lo"].encode_to(writer, [rec.imm26 & 0xFF])
        return writer.getvalue()

    def _encode_block_instrumented(
        self,
        rec_obs,
        dictionary: Dictionary,
        codes: Dict[str, HuffmanCode],
        block: Sequence[InstrRec],
        tokens: Sequence[ParsedToken],
    ) -> bytes:
        """Obs-on variant of :meth:`_encode_block`: identical writes,
        with ``writer.bit_length`` deltas charged per stream (the two
        immediate halves fold into ``imm16`` / ``imm26``)."""
        writer = BitWriter()
        encoders = {name: HuffmanEncoder(code) for name, code in codes.items()}
        per_stream = {"tokens": 0, "regs": 0, "imm16": 0, "imm26": 0}

        def write(stream: str, encoder_name: str, symbol: int) -> None:
            before = writer.bit_length
            encoders[encoder_name].encode_to(writer, [symbol])
            per_stream[stream] += writer.bit_length - before

        for index, pos in tokens:
            write("tokens", "tokens", index)
            entry = dictionary.entries[index]
            for j in range(entry.length):
                instr = block[pos + j]
                for slot, value in enumerate(instr.regs):
                    if entry.reg_binding(j, slot) is None:
                        write("regs", "regs", value)
                if instr.imm16 is not None and entry.imm16_binding(j) is None:
                    write("imm16", "imm16_hi", instr.imm16 >> 8)
                    write("imm16", "imm16_lo", instr.imm16 & 0xFF)
                if instr.imm26 is not None and entry.imm26_binding(j) is None:
                    write("imm26", "imm26_hi", instr.imm26 >> 16)
                    write("imm26", "imm26_lo", (instr.imm26 >> 8) & 0xFF)
                    write("imm26", "imm26_lo", instr.imm26 & 0xFF)
        payload = writer.getvalue()
        for stream, bits in per_stream.items():
            if bits:
                rec_obs.add_bits(stream, bits)
        pad = len(payload) * 8 - writer.bit_length
        if pad:
            rec_obs.add_bits("padding", pad)
        rec_obs.count("sadc.tokens_emitted", len(tokens))
        rec_obs.count("sadc.blocks_encoded")
        return payload

    def _table_bits(self, codes: Dict[str, HuffmanCode]) -> int:
        widths = {
            "tokens": 8,
            "regs": 5,
            "imm16_hi": 8,
            "imm16_lo": 8,
            "imm26_hi": 10,
            "imm26_lo": 8,
        }
        return sum(codes[name].table_bits(widths[name]) for name in codes)

    # -- public API -------------------------------------------------------

    def build_static_dictionary(
        self, training_codes: Sequence[bytes]
    ) -> Dictionary:
        """Build one dictionary from a training corpus (Section 4's
        "static dictionaries are built once and used for all programs").

        Every ISA mnemonic is seeded so the result can parse programs
        outside the corpus; groups and bindings come from corpus gains.
        """
        blocks: List[List[InstrRec]] = []
        for code in training_codes:
            blocks.extend(self._decode_blocks(code))
        return self.build_dictionary(blocks, seed_all_opcodes=True)

    def compress(
        self, code: bytes, dictionary: Optional[Dictionary] = None
    ) -> CompressedImage:
        """Compress a MIPS code image.

        With ``dictionary`` supplied the codec runs in *static* mode:
        the dictionary is used as-is (it must cover every opcode; use
        :meth:`build_static_dictionary`) and only the Huffman tables are
        fit to this program.  Default is the paper's semiadaptive mode —
        a fresh dictionary grown for this program.
        """
        rec = get_recorder()
        blocks = self._decode_blocks(code)
        if dictionary is None:
            with rec.span("sadc.build_dictionary", isa="mips"):
                dictionary = self.build_dictionary(blocks)
        parses = [parse_block(dictionary, block) for block in blocks]
        counters = self._collect_symbols(dictionary, blocks, parses)
        codes = {name: build_code(counter) for name, counter in counters.items()}
        if rec.enabled:
            with rec.span("sadc.encode", isa="mips"):
                payload = [
                    self._encode_block_instrumented(
                        rec, dictionary, codes, block, tokens
                    )
                    for block, tokens in zip(blocks, parses)
                ]
        else:
            payload = [
                self._encode_block(dictionary, codes, block, tokens)
                for block, tokens in zip(blocks, parses)
            ]
        model_bits = dictionary.storage_bits + self._table_bits(codes)
        image = CompressedImage(
            algorithm="SADC",
            original_size=len(code),
            block_size=self.block_size,
            blocks=payload,
            model_bytes=(model_bits + 7) // 8,
            metadata={
                "isa": "mips",
                "dictionary": dictionary,
                "codes": codes,
            },
        )
        if rec.enabled:
            rec.add_bits("model.dictionary", dictionary.storage_bits)
            rec.add_bits("model.tables", self._table_bits(codes))
            model_pad = image.model_bytes * 8 - model_bits
            if model_pad:
                rec.add_bits("model.pad", model_pad)
            rec.add_bits("lat", image.compact_lat.storage_bytes * 8)
            rec.gauge("sadc.dictionary_entries", len(dictionary.entries))
        return image

    # repro: contract decode-entry
    def decompress(self, image: CompressedImage) -> bytes:
        return b"".join(
            self.decompress_blocks(image, range(image.block_count()))
        )

    # repro: contract decode-entry
    def decompress_blocks(
        self, image: CompressedImage, indices
    ) -> List[bytes]:
        """Random-access expansion of a batch of cache blocks.

        Identical output to the per-block loop; the batch form builds
        the stream Huffman decoders once for the whole batch instead of
        once per block (they are read-only during decode, so sharing is
        safe).
        """
        indices = list(indices)
        if not indices:
            return []
        dictionary: Dictionary = image.metadata["dictionary"]
        codes: Dict[str, HuffmanCode] = image.metadata["codes"]
        decoders = {name: HuffmanDecoder(code) for name, code in codes.items()}
        out: List[bytes] = []
        for block_index in indices:
            expected = self._original_block_bytes(image, block_index) // 4
            with decode_guard("sadc.mips.decompress_block"):
                reader = BitReader(block_payload(image, block_index), pad=False)
                out.append(self._decode_words(
                    reader, dictionary, decoders, expected, block_index
                ))
        return out

    def decompress_block(self, image: CompressedImage, block_index: int) -> bytes:
        """Random-access expansion of one cache block."""
        dictionary: Dictionary = image.metadata["dictionary"]
        codes: Dict[str, HuffmanCode] = image.metadata["codes"]
        decoders = {name: HuffmanDecoder(code) for name, code in codes.items()}
        block_bytes = self._original_block_bytes(image, block_index)
        expected = block_bytes // 4
        with decode_guard("sadc.mips.decompress_block"):
            reader = BitReader(block_payload(image, block_index), pad=False)
            return self._decode_words(
                reader, dictionary, decoders, expected, block_index
            )

    def _decode_words(
        self,
        reader: BitReader,
        dictionary: Dictionary,
        decoders: Dict[str, HuffmanDecoder],
        expected: int,
        block_index: int,
    ) -> bytes:
        words: List[int] = []
        while len(words) < expected:
            index = decoders["tokens"].decode_from(reader, 1)[0]
            entry = dictionary.entries[index]
            if not entry.opcodes:
                # An empty entry decodes zero instructions: the loop
                # would never advance — only reachable from a corrupted
                # deserialised dictionary.
                raise CorruptedStreamError(
                    f"dictionary entry {index} is empty",
                    category=CATEGORY_STRUCTURE,
                )
            for j, opcode_id in enumerate(entry.opcodes):
                spec = ID_TO_SPEC[opcode_id]
                regs: List[int] = []
                for slot in range(len(register_slots(spec))):
                    bound = entry.reg_binding(j, slot)
                    if bound is None:
                        regs.append(decoders["regs"].decode_from(reader, 1)[0])
                    else:
                        regs.append(bound)
                imm16 = None
                if uses_imm16(spec):
                    imm16 = entry.imm16_binding(j)
                    if imm16 is None:
                        hi = decoders["imm16_hi"].decode_from(reader, 1)[0]
                        lo = decoders["imm16_lo"].decode_from(reader, 1)[0]
                        imm16 = (hi << 8) | lo
                imm26 = None
                if uses_imm26(spec):
                    imm26 = entry.imm26_binding(j)
                    if imm26 is None:
                        hi = decoders["imm26_hi"].decode_from(reader, 1)[0]
                        mid = decoders["imm26_lo"].decode_from(reader, 1)[0]
                        lo = decoders["imm26_lo"].decode_from(reader, 1)[0]
                        imm26 = (hi << 16) | (mid << 8) | lo
                rec = InstrRec(opcode_id, tuple(regs), imm16, imm26)
                words.append(rec.to_word())
        if len(words) != expected:
            raise ValueError(
                f"block {block_index}: dictionary group crossed the block "
                f"boundary ({len(words)} != {expected} instructions)"
            )
        return words_to_bytes(words, 4)

    def _original_block_bytes(self, image: CompressedImage, block_index: int) -> int:
        full_blocks, tail = divmod(image.original_size, image.block_size)
        if block_index < full_blocks:
            return image.block_size
        if block_index == full_blocks and tail:
            return tail
        raise IndexError(f"block {block_index} out of range")
