"""SADC — Semiadaptive Dictionary Compression (ISA-dependent, Section 4)."""

from repro.core.lat import CompressedImage
from repro.core.sadc.entry import DictEntry, Dictionary
from repro.core.sadc.mips import InstrRec, MipsSadcCodec
from repro.core.sadc.x86 import X86Dictionary, X86SadcCodec


def sadc_compress(code: bytes, isa: str = "mips", **kwargs) -> CompressedImage:
    """One-call SADC compression for a MIPS or x86 code image."""
    if isa == "mips":
        return MipsSadcCodec(**kwargs).compress(code)
    if isa == "x86":
        return X86SadcCodec(**kwargs).compress(code)
    raise ValueError(f"unknown ISA {isa!r} (expected 'mips' or 'x86')")


def sadc_decompress(image: CompressedImage) -> bytes:
    """Decompress an image produced by :func:`sadc_compress`."""
    isa = image.metadata.get("isa")
    if isa == "mips":
        return MipsSadcCodec(block_size=image.block_size).decompress(image)
    if isa == "x86":
        return X86SadcCodec(block_size=image.block_size).decompress(image)
    raise ValueError(f"image has unknown ISA {isa!r}")


__all__ = [
    "DictEntry",
    "Dictionary",
    "InstrRec",
    "MipsSadcCodec",
    "X86Dictionary",
    "X86SadcCodec",
    "sadc_compress",
    "sadc_decompress",
]
