"""Dictionary entries for SADC (Section 4 of the paper).

An entry maps a 1-byte dictionary index to:

* a *sequence* of base opcodes (opcode-group augmentation: "adjacent
  opcode pairs … take advantage of the correlation between adjacent
  instructions"), and/or
* *bound operands* — specific register or immediate values folded into
  the opcode ("if the register R31 in instruction jr R31 appears much
  more frequently than any other register, we can reduce the register
  stream size by introducing a new special opcode for jr R31").

Entries are immutable and hashable so the generator can dedup candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Storage cost constants (bits) for dictionary entries, mirroring the
#: paper's accounting where each dictionary opcode consumes one byte.
OPCODE_BITS = 8
#: A bound register stores its 5-bit value plus a 3-bit slot selector.
BOUND_REG_BITS = 8
#: A bound 16-bit immediate stores its value plus a 4-bit position tag.
BOUND_IMM16_BITS = 20
#: A bound 26-bit immediate stores its value plus a position tag.
BOUND_IMM26_BITS = 30


@dataclass(frozen=True)
class DictEntry:
    """One dictionary entry: opcode group + operand bindings.

    ``bound_regs`` entries are ``(instr_index, slot_index, value)``:
    within the group, instruction ``instr_index``'s register slot
    ``slot_index`` is fixed to ``value`` and disappears from the register
    stream.  ``bound_imm16``/``bound_imm26`` are ``(instr_index, value)``.
    """

    opcodes: Tuple[int, ...]
    bound_regs: Tuple[Tuple[int, int, int], ...] = ()
    bound_imm16: Tuple[Tuple[int, int], ...] = ()
    bound_imm26: Tuple[Tuple[int, int], ...] = ()

    @property
    def length(self) -> int:
        """Number of base opcodes the entry expands to."""
        return len(self.opcodes)

    @property
    def storage_bits(self) -> int:
        """Decoder-table storage this entry consumes."""
        return (
            OPCODE_BITS * len(self.opcodes)
            + BOUND_REG_BITS * len(self.bound_regs)
            + BOUND_IMM16_BITS * len(self.bound_imm16)
            + BOUND_IMM26_BITS * len(self.bound_imm26)
        )

    def reg_binding(self, instr_index: int, slot_index: int) -> Optional[int]:
        """Bound value of a register slot, or None if it streams."""
        for bound_instr, bound_slot, value in self.bound_regs:
            if bound_instr == instr_index and bound_slot == slot_index:
                return value
        return None

    def imm16_binding(self, instr_index: int) -> Optional[int]:
        for bound_instr, value in self.bound_imm16:
            if bound_instr == instr_index:
                return value
        return None

    def imm26_binding(self, instr_index: int) -> Optional[int]:
        for bound_instr, value in self.bound_imm26:
            if bound_instr == instr_index:
                return value
        return None

    def concat(self, other: "DictEntry") -> "DictEntry":
        """Merge two entries into one group (for pair/triple candidates)."""
        offset = self.length
        return DictEntry(
            opcodes=self.opcodes + other.opcodes,
            bound_regs=self.bound_regs
            + tuple((i + offset, s, v) for i, s, v in other.bound_regs),
            bound_imm16=self.bound_imm16
            + tuple((i + offset, v) for i, v in other.bound_imm16),
            bound_imm26=self.bound_imm26
            + tuple((i + offset, v) for i, v in other.bound_imm26),
        )

    def bind_reg(self, instr_index: int, slot_index: int, value: int) -> "DictEntry":
        """Specialise one register slot (a new entry; self is unchanged)."""
        if self.reg_binding(instr_index, slot_index) is not None:
            raise ValueError("slot already bound")
        return DictEntry(
            opcodes=self.opcodes,
            bound_regs=self.bound_regs + ((instr_index, slot_index, value),),
            bound_imm16=self.bound_imm16,
            bound_imm26=self.bound_imm26,
        )

    def bind_imm16(self, instr_index: int, value: int) -> "DictEntry":
        if self.imm16_binding(instr_index) is not None:
            raise ValueError("immediate already bound")
        return DictEntry(
            opcodes=self.opcodes,
            bound_regs=self.bound_regs,
            bound_imm16=self.bound_imm16 + ((instr_index, value),),
            bound_imm26=self.bound_imm26,
        )

    def bind_imm26(self, instr_index: int, value: int) -> "DictEntry":
        if self.imm26_binding(instr_index) is not None:
            raise ValueError("immediate already bound")
        return DictEntry(
            opcodes=self.opcodes,
            bound_regs=self.bound_regs,
            bound_imm16=self.bound_imm16,
            bound_imm26=self.bound_imm26 + ((instr_index, value),),
        )


class Dictionary:
    """An ordered, capacity-limited SADC dictionary with a match index.

    Indices are byte-sized: the paper caps the dictionary at 256 entries
    "in order to keep the opcode value in one byte".
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("dictionary needs at least one entry")
        self.max_entries = max_entries
        self.entries: List[DictEntry] = []
        self._known: Dict[DictEntry, int] = {}
        #: first base opcode -> entry indices, longest/most-bound first.
        self._by_first: Dict[int, List[int]] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, entry: DictEntry) -> bool:
        return entry in self._known

    @property
    def is_full(self) -> bool:
        return len(self.entries) >= self.max_entries

    def add(self, entry: DictEntry) -> int:
        """Insert an entry, returning its index (idempotent)."""
        if entry in self._known:
            return self._known[entry]
        if self.is_full:
            raise ValueError("dictionary is full")
        index = len(self.entries)
        self.entries.append(entry)
        self._known[entry] = index
        bucket = self._by_first.setdefault(entry.opcodes[0], [])
        bucket.append(index)
        # Longest coverage first, then most bindings: greedy parsing
        # prefers the entry that removes the most stream content.
        bucket.sort(
            key=lambda i: (
                self.entries[i].length,
                len(self.entries[i].bound_regs)
                + len(self.entries[i].bound_imm16)
                + len(self.entries[i].bound_imm26),
            ),
            reverse=True,
        )
        return index

    def candidates_starting_with(self, opcode: int) -> List[int]:
        """Entry indices whose group starts with ``opcode``, best first."""
        return self._by_first.get(opcode, [])

    @property
    def storage_bits(self) -> int:
        """Total decoder dictionary storage."""
        return sum(entry.storage_bits for entry in self.entries)
