"""SAMC's semiadaptive Markov model (Section 3 of the paper).

Each *stream* — a chosen group of bit positions within the fixed-width
instruction word — gets a **binary Markov tree**: one probability per
internal node, where the node reached after consuming a bit-prefix
``b0 b1 .. b(d-1)`` predicts the next bit of the stream.  A tree for a
``k``-bit stream has ``2**k - 1`` internal nodes (the paper's
``(2**(k+1) - 2) / 2`` stored probabilities: only left-branch
probabilities are kept, right branches being their complements).

Trees of adjacent streams are *connected* (Figure 4): the starting
distribution of stream ``i+1`` is conditioned on the last
``connect_bits`` bits produced by stream ``i``.  This gives the model
limited memory across streams (and across instruction boundaries)
without exploding storage — each tree is replicated once per context.

The model is **semiadaptive**: trained in a first pass over the subject
program, then frozen; compressor and decompressor walk the identical
frozen tables, and the walk (context and node pointer) resets at every
cache-block boundary so any block can be decompressed independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.entropy.arith import quantize_probability

#: A quantiser maps a float probability to its 16-bit coded value.
Quantizer = Callable[[float], int]


@dataclass(frozen=True)
class StreamSpec:
    """One stream: the MSB-first bit positions it covers in the word."""

    positions: Tuple[int, ...]

    @property
    def k(self) -> int:
        return len(self.positions)


def node_index(depth: int, prefix: int) -> int:
    """Flat index of the Markov-tree node at ``depth`` with bit-``prefix``.

    Depth-0 is the root (no bits consumed); a ``k``-bit stream has
    internal nodes at depths ``0 .. k-1``, ``2**k - 1`` in total.
    """
    return (1 << depth) - 1 + prefix


class StreamModel:
    """The Markov tree(s) for a single stream.

    ``contexts`` replicas of the tree exist, selected by the connection
    context (the trailing bits of the previous stream).
    """

    def __init__(self, spec: StreamSpec, contexts: int) -> None:
        if spec.k == 0:
            raise ValueError("stream must cover at least one bit")
        self.spec = spec
        self.contexts = contexts
        self._nodes = (1 << spec.k) - 1
        self._counts = np.zeros((contexts, self._nodes, 2), dtype=np.int64)
        self._p0_q: np.ndarray = np.array([])
        self._frozen = False

    @property
    def node_count(self) -> int:
        """Internal nodes per tree replica (stored probabilities)."""
        return self._nodes

    def observe(self, context: int, node: int, bit: int) -> None:
        """Record one training observation."""
        if self._frozen:
            raise RuntimeError("model is frozen; cannot train further")
        self._counts[context, node, bit] += 1

    def observe_counts(self, counts: np.ndarray) -> None:
        """Bulk-accumulate a whole table of training observations.

        The fastpath trainer (:mod:`repro.fastpath.samc_kernel`) computes
        every (context, node, bit) event of a program with vectorised
        array arithmetic and lands them here in one integer add — the
        count table ends up identical to per-event :meth:`observe` calls.
        """
        if self._frozen:
            raise RuntimeError("model is frozen; cannot train further")
        if counts.shape != self._counts.shape:
            raise ValueError(
                f"counts shape {counts.shape} != {self._counts.shape}"
            )
        self._counts += counts

    def freeze(self, quantizer: Quantizer = quantize_probability) -> None:
        """Convert counts to quantised probabilities (KT-smoothed)."""
        zeros = self._counts[:, :, 0].astype(np.float64)
        totals = self._counts.sum(axis=2).astype(np.float64)
        p0 = (zeros + 0.5) / (totals + 1.0)
        quantize = np.vectorize(quantizer, otypes=[np.int64])
        self._p0_q = quantize(p0)
        self._frozen = True

    def p0_quantized(self, context: int, node: int) -> int:
        """Frozen quantised P(next bit = 0) at (context, node)."""
        if not self._frozen:
            raise RuntimeError("model must be frozen before coding")
        return int(self._p0_q[context, node])

    @property
    def frozen_table(self) -> np.ndarray:
        """The (contexts, nodes) table of quantised probabilities."""
        if not self._frozen:
            raise RuntimeError("model must be frozen first")
        return self._p0_q

    def load_frozen(self, table: np.ndarray) -> None:
        """Restore a frozen probability table (deserialisation path).

        Only the shape is enforced here: the verifier deliberately
        constructs models with out-of-range probabilities to exercise
        its ``samc-distribution`` check, so range validation of
        *untrusted* tables lives at the deserialisation boundary
        (:mod:`repro.core.serialize`) and in the fastpath kernel
        compile.
        """
        if table.shape != (self.contexts, self._nodes):
            raise ValueError(
                f"table shape {table.shape} != "
                f"({self.contexts}, {self._nodes})"
            )
        self._p0_q = table.astype(np.int64)
        self._frozen = True


class SamcModel:
    """The complete per-program SAMC model: one tree group per stream.

    Parameters
    ----------
    width:
        Instruction width in bits (32 for MIPS, 8 for byte-oriented x86).
    streams:
        Bit-position groups.  Together they must cover every position of
        the word exactly once (a partition), in coding order.
    connect_bits:
        How many trailing bits of the previous stream select the tree
        replica of the next stream (0 disables connection — independent
        trees, the Figure 3 baseline).
    """

    def __init__(
        self,
        width: int,
        streams: Sequence[Sequence[int]],
        connect_bits: int = 1,
    ) -> None:
        if connect_bits < 0:
            raise ValueError("connect_bits must be non-negative")
        covered = sorted(pos for stream in streams for pos in stream)
        if covered != list(range(width)):
            raise ValueError(
                f"streams must partition bit positions 0..{width - 1}, got {covered}"
            )
        self.width = width
        self.connect_bits = connect_bits
        self.specs = [StreamSpec(tuple(stream)) for stream in streams]
        contexts = 1 << connect_bits
        self.stream_models = [StreamModel(spec, contexts) for spec in self.specs]
        self._frozen = False

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` (or :meth:`from_frozen`) has run.

        A frozen model is immutable and safe to share across threads and
        requests — the warm-model registry in :mod:`repro.service` keys
        on this guarantee.
        """
        return self._frozen

    # -- walking -------------------------------------------------------

    def _context_from_bits(self, bits: List[int]) -> int:
        """Connection context: the trailing ``connect_bits`` bits."""
        if self.connect_bits == 0:
            return 0
        context = 0
        for bit in bits[-self.connect_bits :]:
            context = (context << 1) | bit
        return context

    def train_block(self, words: Sequence[int]) -> None:
        """Accumulate counts over one cache block of words.

        Training replays exactly the walk the coder will perform —
        including the context reset at the block start — so the model
        sees the same conditional events the coder asks it about.
        """
        if self._frozen:
            raise RuntimeError("model is frozen; cannot train further")
        context = 0
        for word in words:
            for spec, model in zip(self.specs, self.stream_models):
                bits: List[int] = []
                prefix = 0
                for depth, pos in enumerate(spec.positions):
                    bit = (word >> (self.width - 1 - pos)) & 1
                    model.observe(context, node_index(depth, prefix), bit)
                    prefix = (prefix << 1) | bit
                    bits.append(bit)
                context = self._context_from_bits(bits)

    def freeze(self, quantizer: Quantizer = quantize_probability) -> None:
        """Freeze all stream models for coding."""
        for model in self.stream_models:
            model.freeze(quantizer)
        self._frozen = True

    def walk_encode(self, words: Sequence[int], emit: Callable[[int, int], None]) -> None:
        """Walk one block, calling ``emit(bit, p0_q)`` for every bit.

        The decompressor performs the mirror-image walk via
        :meth:`walk_decode`.  Context and node pointers start fresh, so
        the block is independently decodable.
        """
        context = 0
        for word in words:
            for spec, model in zip(self.specs, self.stream_models):
                bits: List[int] = []
                prefix = 0
                for depth, pos in enumerate(spec.positions):
                    bit = (word >> (self.width - 1 - pos)) & 1
                    emit(bit, model.p0_quantized(context, node_index(depth, prefix)))
                    prefix = (prefix << 1) | bit
                    bits.append(bit)
                context = self._context_from_bits(bits)

    def walk_decode(self, word_count: int, next_bit: Callable[[int], int]) -> List[int]:
        """Decode ``word_count`` words; ``next_bit(p0_q)`` supplies bits."""
        words: List[int] = []
        context = 0
        for _ in range(word_count):
            word = 0
            for spec, model in zip(self.specs, self.stream_models):
                bits: List[int] = []
                prefix = 0
                for depth, pos in enumerate(spec.positions):
                    bit = next_bit(model.p0_quantized(context, node_index(depth, prefix)))
                    prefix = (prefix << 1) | bit
                    bits.append(bit)
                    word |= bit << (self.width - 1 - pos)
                context = self._context_from_bits(bits)
            words.append(word)
        return words

    # -- storage accounting ---------------------------------------------

    def probability_count(self) -> int:
        """Stored probabilities across all trees and replicas."""
        return sum(
            model.contexts * model.node_count for model in self.stream_models
        )

    def storage_bits(self, bits_per_probability: int = 16) -> int:
        """Model table size: probabilities plus the stream position map."""
        position_map_bits = self.width * max(1, (self.width - 1).bit_length())
        return self.probability_count() * bits_per_probability + position_map_bits

    def storage_bytes(self, bits_per_probability: int = 16) -> int:
        return (self.storage_bits(bits_per_probability) + 7) // 8

    @classmethod
    def from_frozen(
        cls,
        width: int,
        streams: Sequence[Sequence[int]],
        connect_bits: int,
        tables: Sequence[np.ndarray],
    ) -> "SamcModel":
        """Rebuild a ready-to-code model from serialised tables."""
        model = cls(width, streams, connect_bits)
        if len(tables) != len(model.stream_models):
            raise ValueError("one table per stream required")
        for stream_model, table in zip(model.stream_models, tables):
            stream_model.load_frozen(table)
        model._frozen = True
        return model
