"""SAMC — Semiadaptive Markov Compression (ISA-independent, Section 3)."""

from repro.core.samc.codec import SamcCodec, samc_compress, samc_decompress
from repro.core.samc.model import SamcModel, StreamModel, StreamSpec, node_index
from repro.core.samc.streams import (
    contiguous_streams,
    correlation_streams,
    optimize_streams,
    total_model_entropy,
)

__all__ = [
    "SamcCodec",
    "SamcModel",
    "StreamModel",
    "StreamSpec",
    "contiguous_streams",
    "correlation_streams",
    "node_index",
    "optimize_streams",
    "samc_compress",
    "samc_decompress",
    "total_model_entropy",
]
