"""SAMC compressor / decompressor (Section 3 of the paper).

Two-pass semiadaptive scheme:

1. **Statistics gathering** — walk the whole program, building the
   per-stream Markov trees (:class:`repro.core.samc.model.SamcModel`).
2. **Compression** — walk the program again, feeding each bit and its
   model prediction to the binary arithmetic coder.  The coder state,
   Markov context, and tree pointers all reset at every cache-block
   boundary, so the refill engine can decompress any block given only
   its LAT offset.

The codec is ISA-independent: it only assumes fixed-width words.  MIPS
uses 32-bit words in four 8-bit streams; x86 falls back to 8-bit "words"
(single stream), which is why SAMC loses most of its edge on CISC — the
paper observes exactly this in Section 5.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bitstream.fields import chunk_words, words_to_bytes
from repro.core.lat import CompressedImage
from repro.core.samc.model import SamcModel
from repro.core.samc.streams import contiguous_streams, optimize_streams
from repro.fastpath import fastpath_enabled
from repro.obs import get_recorder
from repro.resilience.errors import decode_guard
from repro.resilience.frame import block_payload
from repro.entropy.arith import (
    BinaryArithmeticDecoder,
    BinaryArithmeticEncoder,
    quantize_power_of_two,
    quantize_probability,
    quantize_probability_8bit,
)

#: Bits per stored probability in the decoder's probability memory.
PROBABILITY_BITS = {"full": 8, "full16": 16, "pow2": 5}
QUANTIZERS = {
    "full": quantize_probability_8bit,
    "full16": quantize_probability,
    "pow2": quantize_power_of_two,
}

DEFAULT_BLOCK_SIZE = 32


class SamcCodec:
    """Configurable SAMC codec.

    Parameters
    ----------
    word_bits:
        Instruction width; must be a multiple of 8 (32 for MIPS, 8 for a
        byte-oriented CISC fallback).
    streams:
        Bit-position partition of the word.  Default: four equal
        contiguous streams for 32-bit words, one stream for 8-bit words.
    connect_bits:
        Inter-stream Markov-tree connection order (Figure 4); 0 gives
        independent trees.
    block_size:
        Cache-block size in bytes; every block compresses independently.
    probability_mode:
        ``"full"`` (8-bit stored probabilities, the default),
        ``"full16"`` (16-bit), or ``"pow2"`` (shift-only decoder
        hardware; less precise, per Witten et al. ~5% loss).
    optimize:
        When true, run the random-exchange stream optimiser on the
        program before training (slower, slightly better ratios).
    """

    def __init__(
        self,
        word_bits: int = 32,
        streams: Optional[Sequence[Sequence[int]]] = None,
        connect_bits: int = 1,
        block_size: int = DEFAULT_BLOCK_SIZE,
        probability_mode: str = "full",
        optimize: bool = False,
        optimize_iterations: int = 150,
    ) -> None:
        if word_bits % 8 != 0 or word_bits <= 0:
            raise ValueError("word_bits must be a positive multiple of 8")
        if block_size % (word_bits // 8) != 0:
            raise ValueError("block_size must hold a whole number of words")
        if probability_mode not in PROBABILITY_BITS:
            raise ValueError(f"unknown probability mode {probability_mode!r}")
        self.word_bits = word_bits
        self.word_bytes = word_bits // 8
        self.block_size = block_size
        self.connect_bits = connect_bits
        self.probability_mode = probability_mode
        self.optimize = optimize
        self.optimize_iterations = optimize_iterations
        if streams is None:
            n_default = 4 if word_bits >= 32 else 1
            streams = contiguous_streams(word_bits, n_default)
        self.streams = [tuple(s) for s in streams]

    @classmethod
    def for_mips(cls, **kwargs) -> "SamcCodec":
        """Paper configuration for MIPS: 32-bit words, four 8-bit streams."""
        kwargs.setdefault("word_bits", 32)
        return cls(**kwargs)

    @classmethod
    def for_bytes(cls, **kwargs) -> "SamcCodec":
        """CISC fallback: byte-oriented coding, single connected stream."""
        kwargs.setdefault("word_bits", 8)
        kwargs.setdefault("connect_bits", 2)
        return cls(**kwargs)

    # ------------------------------------------------------------------

    def _quantizer(self):
        return QUANTIZERS[self.probability_mode]

    def _probability_bits(self) -> int:
        return PROBABILITY_BITS[self.probability_mode]

    def _block_words(self, code: bytes) -> List[List[int]]:
        """Words grouped by cache block (last block may be short)."""
        words = chunk_words(code, self.word_bytes)
        per_block = self.block_size // self.word_bytes
        return [
            words[i : i + per_block] for i in range(0, len(words), per_block)
        ]

    def _bit_labels(self, model: SamcModel) -> List[tuple]:
        """Per-word coding order: the ``(stream, depth)`` of each bit.

        The walk in :meth:`SamcModel.walk_encode` visits bits stream by
        stream, depth by depth, so bit ``i`` of every word maps to the
        same label — the key the bit-accounting channel attributes
        arithmetic-coder output to.
        """
        return [
            (index, depth)
            for index, spec in enumerate(model.specs)
            for depth in range(spec.k)
        ]

    def _encode_block_instrumented(self, model: SamcModel, block_words) -> bytes:
        """Reference encode of one block with per-(stream, depth) bit
        attribution.  Byte-identical to the plain path: the only change
        is measuring ``bytes_emitted`` around each coded bit."""
        rec = get_recorder()
        encoder = BinaryArithmeticEncoder()
        labels = self._bit_labels(model)
        n_labels = len(labels)
        per_label: dict = {}
        state = [0]  # bit index within the block walk

        def emit(bit: int, p0_q: int) -> None:
            before = encoder.bytes_emitted
            encoder.encode_bit(bit, p0_q)
            delta = encoder.bytes_emitted - before
            if delta:
                label = labels[state[0] % n_labels]
                per_label[label] = per_label.get(label, 0) + delta * 8
            state[0] += 1

        model.walk_encode(block_words, emit)
        coded = encoder.bytes_emitted
        payload = encoder.finish()
        for (stream, depth), bits in sorted(per_label.items()):
            rec.add_bits(f"stream{stream}", bits)
            rec.count(f"samc.stream{stream}.depth{depth}.bits", bits)
        rec.add_bits("flush", (len(payload) - coded) * 8)
        rec.count("samc.blocks_encoded")
        rec.count("samc.words_encoded", len(block_words))
        return payload

    def train(self, code: bytes) -> SamcModel:
        """First pass: build and freeze the Markov model for a program."""
        streams = self.streams
        if self.optimize:
            words = chunk_words(code, self.word_bytes)
            streams, _entropy = optimize_streams(
                words,
                self.word_bits,
                n_streams=len(self.streams),
                iterations=self.optimize_iterations,
                initial=self.streams,
            )
        model = SamcModel(self.word_bits, streams, self.connect_bits)
        if fastpath_enabled():
            from repro.fastpath.samc_kernel import train_model_fast

            train_model_fast(
                model,
                chunk_words(code, self.word_bytes),
                self.block_size // self.word_bytes,
            )
        else:
            for block in self._block_words(code):
                model.train_block(block)
        model.freeze(self._quantizer())
        return model

    def compress(self, code: bytes) -> CompressedImage:
        """Compress a code image into independently decodable blocks."""
        self._check_word_aligned(code)
        rec = get_recorder()
        with rec.span("samc.train", word_bits=self.word_bits):
            model = self.train(code)
        return self.compress_with_model(code, model)

    def compress_with_model(
        self, code: bytes, model: SamcModel
    ) -> CompressedImage:
        """Compress ``code`` against an already-trained, frozen model.

        This is the warm-model entry point: a long-lived service trains
        the two-pass model once (:meth:`train`), freezes it, and reuses
        it across requests — only the encode pass runs per call.  The
        model must be frozen and built for this codec's word width; it
        is only consulted, never mutated, so one model may be shared by
        concurrent encodes.  ``compress(code)`` is exactly
        ``compress_with_model(code, train(code))``.
        """
        self._check_word_aligned(code)
        if not model.frozen:
            raise ValueError("model must be frozen before encoding")
        if model.width != self.word_bits:
            raise ValueError(
                f"model is for {model.width}-bit words, codec expects "
                f"{self.word_bits}"
            )
        rec = get_recorder()
        if fastpath_enabled():
            from repro.fastpath.samc_kernel import compiled_model

            with rec.span("samc.encode", path="fastpath"):
                blocks = compiled_model(model).encode_blocks(
                    chunk_words(code, self.word_bytes),
                    self.block_size // self.word_bytes,
                )
        elif rec.enabled:
            with rec.span("samc.encode", path="reference"):
                blocks = [
                    self._encode_block_instrumented(model, block_words)
                    for block_words in self._block_words(code)
                ]
        else:
            blocks = []
            for block_words in self._block_words(code):
                encoder = BinaryArithmeticEncoder()
                model.walk_encode(block_words, encoder.encode_bit)
                blocks.append(encoder.finish())
        image = CompressedImage(
            algorithm="SAMC",
            original_size=len(code),
            block_size=self.block_size,
            blocks=blocks,
            model_bytes=model.storage_bytes(self._probability_bits()),
            metadata={
                "model": model,
                "word_bits": self.word_bits,
                "streams": model.specs,
                "connect_bits": model.connect_bits,
                "probability_mode": self.probability_mode,
            },
        )
        if rec.enabled:
            rec.add_bits("model", image.model_bytes * 8)
            rec.add_bits("lat", image.compact_lat.storage_bytes * 8)
            rec.gauge("samc.model_bytes", image.model_bytes)
            for block in blocks:
                rec.observe("samc.block_payload_bytes", len(block))
        return image

    # repro: contract decode-entry
    def decompress(self, image: CompressedImage) -> bytes:
        """Decompress a full image (all blocks, in order)."""
        return b"".join(
            self.decompress_blocks(image, range(image.block_count()))
        )

    # repro: contract decode-entry
    def decompress_blocks(
        self, image: CompressedImage, indices: Sequence[int]
    ) -> List[bytes]:
        """Random-access decompression of a batch of cache blocks.

        The reference semantics are exactly the per-block loop —
        ``[decompress_block(image, i) for i in indices]`` — and that is
        what runs with the fastpath disabled.  Under ``REPRO_FASTPATH``
        the whole batch goes to the compiled kernel's
        :meth:`~repro.fastpath.samc_kernel.CompiledSamcModel.decode_blocks`,
        which runs the range decoder in lockstep across the batch (or
        falls back to the fused scalar loop below its batch threshold);
        output is byte-identical either way.  This is the refill
        engine's miss-burst entry point and the unit the service's
        vectorised dispatcher executes.
        """
        indices = list(indices)
        if not indices:
            return []
        if not fastpath_enabled():
            return [
                self.decompress_block(image, index) for index in indices
            ]
        from repro.fastpath.samc_kernel import compiled_model

        model: SamcModel = image.metadata["model"]
        word_counts = [
            self._original_block_bytes(image, index) // self.word_bytes
            for index in indices
        ]
        rec = get_recorder()
        with rec.span("samc.decode_batch", blocks=len(indices)), \
                decode_guard("samc.decompress_blocks"):
            payloads = [block_payload(image, index) for index in indices]
            batches = compiled_model(model).decode_blocks(
                payloads, word_counts
            )
        if rec.enabled:
            rec.count("samc.blocks_decoded", len(indices))
            rec.count("samc.words_decoded", sum(word_counts))
        return [
            words_to_bytes(words, self.word_bytes) for words in batches
        ]

    def decompress_block(self, image: CompressedImage, block_index: int) -> bytes:
        """Random-access decompression of a single cache block.

        This is the refill-engine operation: only the block's own bytes
        (located via the LAT) and the shared model are consulted.
        """
        model: SamcModel = image.metadata["model"]
        block_bytes = self._original_block_bytes(image, block_index)
        word_count = block_bytes // self.word_bytes
        rec = get_recorder()
        with rec.span("samc.decode_block"), \
                decode_guard("samc.decompress_block"):
            payload = block_payload(image, block_index)
            if fastpath_enabled():
                from repro.fastpath.samc_kernel import compiled_model

                words = compiled_model(model).decode_block(payload, word_count)
            else:
                decoder = BinaryArithmeticDecoder(payload)
                words = model.walk_decode(word_count, decoder.decode_bit)
        if rec.enabled:
            rec.count("samc.blocks_decoded")
            rec.count("samc.words_decoded", word_count)
        return words_to_bytes(words, self.word_bytes)

    def _original_block_bytes(self, image: CompressedImage, block_index: int) -> int:
        full_blocks, tail = divmod(image.original_size, image.block_size)
        if block_index < full_blocks:
            return image.block_size
        if block_index == full_blocks and tail:
            return tail
        raise IndexError(f"block {block_index} out of range")

    def _check_word_aligned(self, code: bytes) -> None:
        if len(code) % self.word_bytes != 0:
            raise ValueError(
                f"code length {len(code)} is not a multiple of the "
                f"{self.word_bytes}-byte word size"
            )


def samc_compress(code: bytes, **kwargs) -> CompressedImage:
    """One-call SAMC compression with paper-default parameters."""
    codec = SamcCodec(**kwargs)
    return codec.compress(code)


def samc_decompress(image: CompressedImage) -> bytes:
    """Decompress an image produced by :func:`samc_compress`."""
    codec = SamcCodec(
        word_bits=image.metadata["word_bits"],
        streams=[spec.positions for spec in image.metadata["streams"]],
        connect_bits=image.metadata["connect_bits"],
        block_size=image.block_size,
        probability_mode=image.metadata["probability_mode"],
    )
    return codec.decompress(image)
