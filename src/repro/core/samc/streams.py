"""Stream-assignment search for SAMC (Section 3 of the paper).

"Our program combines bits with high correlation to streams and
calculates their entropies.  It then attempts to exchange some bits
between streams randomly and recalculates the entropies.  If the new
average entropy is lower it accepts this step…"

We implement exactly that: a correlation-seeded greedy grouping followed
by random-exchange hill climbing on the total first-order (Markov-tree)
entropy.  A stream is an ordered tuple of bit positions; it need *not*
be contiguous ("a stream does not necessarily have adjacent bits").
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.entropy.stats import bit_correlation, markov_stream_entropy

Streams = List[Tuple[int, ...]]


def contiguous_streams(width: int, n_streams: int) -> Streams:
    """Split the word into ``n_streams`` contiguous, equal-width streams.

    This is the Figure-2 style division (and the paper's default of four
    8-bit streams for 32-bit MIPS instructions).
    """
    if width % n_streams != 0:
        raise ValueError(f"{n_streams} streams do not evenly divide {width} bits")
    size = width // n_streams
    return [tuple(range(i * size, (i + 1) * size)) for i in range(n_streams)]


def total_model_entropy(
    words: Sequence[int], streams: Streams, width: int
) -> float:
    """Total modelled bits/instruction: sum of k_i * H_i over streams.

    This is the quantity the arithmetic coder's output size tracks, so it
    is the hill-climbing objective.
    """
    return sum(
        len(stream) * markov_stream_entropy(words, stream, width)
        for stream in streams
    )


def correlation_streams(
    words: Sequence[int], width: int, n_streams: int
) -> Streams:
    """Greedy correlation-based grouping.

    Repeatedly seed a stream with the unassigned bit having the largest
    total correlation mass, then grow it with the unassigned bit most
    correlated to the stream's current members, until the stream is full.
    """
    if width % n_streams != 0:
        raise ValueError(f"{n_streams} streams do not evenly divide {width} bits")
    size = width // n_streams
    corr = bit_correlation(words, width)
    unassigned = set(range(width))
    streams: Streams = []
    for _ in range(n_streams):
        seed = max(
            unassigned,
            key=lambda i: sum(corr[i][j] for j in unassigned if j != i),
        )
        members = [seed]
        unassigned.remove(seed)
        while len(members) < size:
            best = max(
                unassigned,
                key=lambda i: sum(corr[i][j] for j in members),
            )
            members.append(best)
            unassigned.remove(best)
        streams.append(tuple(sorted(members)))
    return streams


def optimize_streams(
    words: Sequence[int],
    width: int,
    n_streams: int = 4,
    iterations: int = 200,
    seed: int = 1998,
    initial: Streams = None,
) -> Tuple[Streams, float]:
    """Random-exchange hill climbing on total Markov-tree entropy.

    Starts from ``initial`` (default: the correlation-greedy grouping),
    proposes random swaps of one bit position between two streams, and
    keeps a swap when it lowers the objective.  Returns the best streams
    found and their total entropy (bits per instruction).
    """
    rng = random.Random(seed)
    streams = [list(s) for s in (initial or correlation_streams(words, width, n_streams))]
    best = total_model_entropy(words, [tuple(s) for s in streams], width)
    for _ in range(iterations):
        a, b = rng.sample(range(len(streams)), 2)
        i = rng.randrange(len(streams[a]))
        j = rng.randrange(len(streams[b]))
        streams[a][i], streams[b][j] = streams[b][j], streams[a][i]
        candidate = total_model_entropy(
            words, [tuple(sorted(s)) for s in streams], width
        )
        if candidate < best:
            best = candidate
        else:
            streams[a][i], streams[b][j] = streams[b][j], streams[a][i]
    return [tuple(sorted(s)) for s in streams], best
