"""Table-driven batch byte-Huffman decode.

The reference :class:`repro.entropy.huffman.HuffmanDecoder` probes a
``(length, word)`` dictionary one bit at a time — fine for one block,
but the service decodes whole batches of independent blocks against one
shared canonical table.  This kernel compiles the code into a flat
``2**L`` lookup table (``L`` = longest codeword): every L-bit window of
the stream maps directly to ``(symbol, length)``, so decoding one symbol
is a single gather.  Blocks then decode in lockstep across the batch —
cache blocks all hold the same number of symbols (bar the tail), so one
vectorised gather/advance step per symbol position serves every block at
once, with finished blocks masked out.

The flat table is only built for sane codes (complete enough to check,
symbols in byte range, ``L`` ≤ :data:`MAX_TABLE_BITS`); anything else —
and any block that trips an invalid window or overruns its payload —
falls back to the reference decoder so corrupted streams raise the exact
reference :class:`~repro.resilience.errors.CorruptedStreamError`.
Differential tests pin byte-identity between both paths.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Longest codeword the flat table will materialise (2**16 entries).
MAX_TABLE_BITS = 16

_TABLE_ATTR = "_fastpath_decode_table"


def compile_decode_table(code) -> Optional[Tuple[np.ndarray, np.ndarray, int]]:
    """Flatten a canonical :class:`HuffmanCode` into gatherable arrays.

    Returns ``(symbols, lengths, L)`` where indexing either array with an
    L-bit stream window yields the decoded symbol and its codeword
    length, or ``None`` when the code is unsuitable for the fast table
    (too deep, empty, or holding non-byte symbols — the reference
    decoder owns those paths, including their error behaviour).  Cached
    on the code object: the service decodes many batches per table.
    """
    cached = getattr(code, _TABLE_ATTR, None)
    if cached is not None:
        return cached if cached != () else None
    result = _build_table(code)
    # HuffmanCode is a frozen dataclass; object.__setattr__ is the
    # sanctioned way to memoise on one (same pattern as compiled_model).
    object.__setattr__(code, _TABLE_ATTR, result if result is not None else ())
    return result


def _build_table(code) -> Optional[Tuple[np.ndarray, np.ndarray, int]]:
    lengths = code.lengths
    if not lengths:
        return None
    max_length = max(lengths.values())
    if max_length == 0 or max_length > MAX_TABLE_BITS:
        return None
    if any(s < 0 or s > 255 for s in lengths):
        # bytes() must reject out-of-range symbols with the reference
        # error; keep those tables on the reference path.
        return None
    size = 1 << max_length
    symbols = np.zeros(size, dtype=np.int64)
    spans = np.zeros(size, dtype=np.int64)  # 0 marks an invalid window
    for symbol, length in lengths.items():
        first = code.codewords[symbol] << (max_length - length)
        last = first + (1 << (max_length - length))
        symbols[first:last] = symbol
        spans[first:last] = length
    return symbols, spans, max_length


def decode_blocks_fast(
    table: Tuple[np.ndarray, np.ndarray, int],
    payloads: Sequence[bytes],
    counts: Sequence[int],
) -> Optional[List[bytes]]:
    """Lockstep batch decode; ``None`` when any block needs the reference.

    Per symbol step: gather each live block's next L-bit window (three
    byte loads around its bit cursor), look up symbol and length, store
    the symbol, advance the cursor by the length.  A zero length marks a
    window no codeword covers, and a cursor past the payload means the
    stream ran dry mid-block — either way the whole batch is handed back
    to the reference decoder so the failing block raises its exact
    reference error (blocks are re-decoded in caller order, preserving
    which error surfaces first).
    """
    symbols, spans, max_length = table
    batch = len(payloads)
    if batch == 0:
        return []
    max_count = max(counts)
    if max_count == 0:
        return [b"" for _ in payloads]
    stride = max(len(p) for p in payloads) + 4
    padded = bytearray(batch * stride)
    for i, payload in enumerate(payloads):
        padded[i * stride : i * stride + len(payload)] = payload
    flat = np.frombuffer(bytes(padded), dtype=np.uint8).astype(np.int64)
    bit_limit = np.asarray([len(p) * 8 for p in payloads], dtype=np.int64)
    cn = np.asarray(counts, dtype=np.int64)
    base = np.arange(batch, dtype=np.int64) * stride

    cursor = np.zeros(batch, dtype=np.int64)
    out = np.zeros((batch, max_count), dtype=np.int64)
    window_mask = (1 << max_length) - 1
    pos = np.empty(batch, dtype=np.int64)
    window = np.empty(batch, dtype=np.int64)
    t1 = np.empty(batch, dtype=np.int64)
    step = np.empty(batch, dtype=np.int64)
    live = np.empty(batch, dtype=bool)
    bad = np.empty(batch, dtype=bool)

    for position in range(max_count):
        np.greater(cn, position, out=live)
        np.right_shift(cursor, 3, out=pos)
        pos += base
        np.take(flat, pos, out=window)
        window <<= 8
        pos += 1
        np.take(flat, pos, out=t1)
        window |= t1
        window <<= 8
        pos += 1
        np.take(flat, pos, out=t1)
        window |= t1
        # Align the window: drop the bits already consumed within the
        # first byte, keep the top ``max_length``.
        np.bitwise_and(cursor, 7, out=t1)
        np.subtract(24 - max_length, t1, out=t1)
        np.right_shift(window, t1, out=window)
        window &= window_mask
        np.take(spans, window, out=step)
        np.equal(step, 0, out=bad)
        np.logical_and(bad, live, out=bad)
        if bad.any():
            return None
        np.take(symbols, window, out=t1)
        out[:, position] = t1
        np.multiply(step, live, out=step)
        cursor += step
    if bool((cursor > bit_limit).any()):
        return None
    return [
        out[i, : counts[i]].astype(np.uint8).tobytes() for i in range(batch)
    ]
