"""Table-compiled SAMC kernels: vectorised training, fused coding loops.

The reference SAMC path costs three Python method calls and a numpy
scalar index *per coded bit* (``walk_encode`` → ``p0_quantized`` →
``encode_bit``).  This module removes all of it:

* **Training** (:func:`train_model_fast`) — the Markov walk is fully
  determined by the data, so the (context, node, bit) triple of every
  training observation is computed for the *whole program at once* with
  numpy array arithmetic, and the per-stream count tables accumulate via
  one :func:`numpy.bincount` per stream.
* **Encoding** (:meth:`CompiledSamcModel.encode_blocks`) — the per-bit
  quantised probabilities are gathered with one fancy-index per stream,
  then each block runs a single tight Python loop that fuses the Markov
  walk with the carry-less range coder, appending renormalisation bytes
  straight into a ``bytearray``.  The final flush is the *same function*
  the reference encoder uses (:func:`repro.entropy.arith.flush_interval`).
* **Decoding** (:meth:`CompiledSamcModel.decode_block`) — inherently
  sequential (each decoded bit steers the walk), so the win comes from
  compiling the frozen model into flat Python integer lists indexed by
  ``context * nodes + node`` and inlining the range decoder: zero
  attribute lookups or method calls per bit.
* **Batch decoding** (:meth:`CompiledSamcModel.decode_blocks`) — blocks
  are independent by construction (coder state, Markov context, and tree
  pointers all reset at block boundaries), and every block follows the
  *same* (stream, depth) bit schedule; only the per-block coder state
  differs.  The lockstep decoder therefore runs the range decoder across
  the whole batch at once: one vectorised split/branch/renormalisation
  step over all live blocks per scheduled bit, with numpy boolean masks
  selecting the blocks that renormalise (or have already finished) at
  each step.  Masked blocks simply do not advance their read pointers or
  shift their coder registers, so every block's state trajectory is
  bit-for-bit the trajectory the scalar loop would have produced — which
  is why the batch path is byte-identical, not merely equivalent.
* **Batch encoding** (:meth:`CompiledSamcModel.encode_blocks` above a
  batch threshold) — the same lockstep structure in reverse: the bit and
  probability matrices from :func:`_walk_arrays` are transposed to
  bit-major order and all blocks' range coders advance together, with
  renormalisation bytes scattered into per-block output rows.

The lockstep step has a fixed numpy-call cost per scheduled bit that is
(nearly) independent of the batch size, while the scalar loops scale
linearly in it — so vectorisation only wins above a crossover batch
(roughly 10²  blocks; override with ``REPRO_BATCH_MIN``).  Below the
threshold the batch entry points fall back to the fused scalar loops, so
small batches never regress.

Every loop is a line-for-line port of the reference control flow, so the
output is bit-identical; the golden-vector and differential tests pin it.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.entropy.arith import PROB_BITS, flush_interval
from repro.core.samc.model import SamcModel
from repro.obs import get_recorder

_MASK = 0xFFFFFFFF
_TOP = 1 << 24
_BOT = 1 << 16

#: Measured crossover below which the lockstep batch kernels lose to the
#: fused scalar loops (each numpy call costs ~1µs regardless of batch
#: size, so the vectorised step only amortises over enough blocks).
DEFAULT_BATCH_MIN = 96

#: Streams deeper than this would need oversized prefix-deposit LUTs
#: (2**k entries); no real configuration comes close, but stay safe.
_MAX_LUT_DEPTH = 12


def batch_min() -> int:
    """Batch size at which the lockstep kernels engage.

    ``REPRO_BATCH_MIN`` overrides the measured default — set it to ``1``
    to force the vectorised path (the differential tests do, so small
    ragged batches exercise the lockstep code), or very high to pin the
    scalar loops.
    """
    raw = os.environ.get("REPRO_BATCH_MIN")
    if raw is None:
        return DEFAULT_BATCH_MIN
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_BATCH_MIN


def _walk_arrays(
    width: int,
    specs: Sequence,
    connect_bits: int,
    words: Sequence[int],
    words_per_block: int,
) -> Tuple[list, list]:
    """Vectorised Markov walk over a whole program.

    Returns, per stream, the ``(n_words, k)`` bit and node-index matrices
    plus the ``(n_words,)`` context vector — exactly the (context, node,
    bit) triples the reference walk visits, with the context reset at
    every cache-block boundary.
    """
    arr = np.asarray(words, dtype=np.int64)
    n = arr.shape[0]
    per_stream = []
    for spec in specs:
        k = spec.k
        shifts = np.array([width - 1 - p for p in spec.positions], dtype=np.int64)
        bits = (arr[:, None] >> shifts[None, :]) & 1
        prefix = np.zeros((n, k), dtype=np.int64)
        for depth in range(1, k):
            prefix[:, depth] = (prefix[:, depth - 1] << 1) | bits[:, depth - 1]
        node = ((1 << np.arange(k, dtype=np.int64)) - 1)[None, :] + prefix
        value = (prefix[:, k - 1] << 1) | bits[:, k - 1]
        mask = (1 << min(connect_bits, k)) - 1 if connect_bits else 0
        per_stream.append((bits, node, value & mask))
    contexts = []
    for index in range(len(specs)):
        if index == 0:
            ctx = np.empty(n, dtype=np.int64)
            if n:
                ctx[0] = 0
                ctx[1:] = per_stream[-1][2][:-1]
                ctx[::words_per_block] = 0  # context resets at block starts
        else:
            ctx = per_stream[index - 1][2]
        contexts.append(ctx)
    return per_stream, contexts


def train_model_fast(  # repro: noqa dual-path-drift (oracle is SamcModel.train_block; bit-identity is covered by the fastpath differential tests)
    model: SamcModel, words: Sequence[int], words_per_block: int
) -> None:
    """Accumulate all training counts for ``words`` into ``model``.

    Bit-identical to calling :meth:`SamcModel.train_block` per cache
    block: the same (context, node, bit) events are counted, just via
    one bincount per stream instead of one numpy scalar ``+=`` per bit.
    """
    if not len(words):
        return
    per_stream, contexts = _walk_arrays(
        model.width, model.specs, model.connect_bits, words, words_per_block
    )
    for stream_model, (bits, node, _tail), ctx in zip(
        model.stream_models, per_stream, contexts
    ):
        nodes = stream_model.node_count
        flat = ((ctx[:, None] * nodes + node) * 2 + bits).ravel()
        counts = np.bincount(flat, minlength=stream_model.contexts * nodes * 2)
        stream_model.observe_counts(
            counts.reshape(stream_model.contexts, nodes, 2)
        )


class CompiledSamcModel:
    """A frozen :class:`SamcModel` compiled to flat integer tables.

    Construction converts every stream's quantised-probability table to a
    flat Python list (``p0[context * nodes + node]``) and precomputes the
    bit-placement shifts and context masks, so the coding loops touch
    only local integers.  Quantisation happened once at freeze time;
    nothing here ever re-quantises.
    """

    def __init__(self, model: SamcModel) -> None:
        self.width = model.width
        self.connect_bits = model.connect_bits
        self.specs = model.specs
        self._tables = [sm.frozen_table for sm in model.stream_models]
        self._streams = []
        prob_one = 1 << PROB_BITS
        for spec, stream_model in zip(model.specs, model.stream_models):
            k = spec.k
            shifts = tuple(model.width - 1 - p for p in spec.positions)
            mask = (1 << min(model.connect_bits, k)) - 1 if model.connect_bits else 0
            p0_flat = stream_model.frozen_table.ravel().tolist()
            # A probability of 0 (or PROB_ONE) collapses the range
            # coder's split to nothing and the decode renormalisation
            # loop below would never terminate; tables reaching this
            # point from deserialisation are untrusted, so reject here.
            if p0_flat and not (1 <= min(p0_flat) and max(p0_flat) <= prob_one - 1):
                from repro.resilience.errors import (
                    CATEGORY_STRUCTURE,
                    CorruptedStreamError,
                )

                raise CorruptedStreamError(
                    "compiled SAMC table holds probabilities outside "
                    f"[1, {prob_one - 1}]",
                    category=CATEGORY_STRUCTURE,
                )
            self._streams.append(
                (shifts, stream_model.node_count, p0_flat, mask)
            )
        # Lockstep batch tables ((depth views, deposit LUT, ...) per
        # stream) are built lazily on the first batch call.
        self._batch_streams: Optional[list] = None

    def _compile_batch(self) -> Optional[list]:
        """Per-stream arrays for the lockstep batch coders (cached).

        For each stream: the quantised-probability table sliced into one
        view per tree depth (folding the ``(1 << depth) - 1`` node base
        into the view offset, so the per-bit gather is a single ``take``)
        and a prefix→word-bits deposit LUT that places a whole stream's
        decoded bits with one gather instead of one shift-or per bit.
        """
        if self._batch_streams is not None:
            return self._batch_streams
        if any(len(shifts) > _MAX_LUT_DEPTH for shifts, *_ in self._streams):
            return None
        compiled = []
        for shifts, nodes, p0_flat, ctx_mask in self._streams:
            table = np.asarray(p0_flat, dtype=np.int64)
            k = len(shifts)
            lut = np.zeros(1 << k, dtype=np.int64)
            for prefix in range(1 << k):
                word = 0
                for depth, shift in enumerate(shifts):
                    if (prefix >> (k - 1 - depth)) & 1:
                        word |= 1 << shift
                lut[prefix] = word
            views = [table[(1 << depth) - 1:] for depth in range(k)]
            compiled.append((k, nodes, views, lut, ctx_mask))
        self._batch_streams = compiled
        return compiled

    # -- encode --------------------------------------------------------

    def encode_blocks(  # repro: noqa dual-path-drift (whole-program vectorised encode; oracle is the per-block reference encoder in core/samc, differential-tested)
        self, words: Sequence[int], words_per_block: int
    ) -> List[bytes]:
        """Encode a whole program, one payload per cache block."""
        n = len(words)
        if n == 0:
            return []
        per_stream, contexts = _walk_arrays(
            self.width, self.specs, self.connect_bits, words, words_per_block
        )
        bit_cols = []
        prob_cols = []
        for table, (bits, node, _tail), ctx in zip(
            self._tables, per_stream, contexts
        ):
            bit_cols.append(bits)
            prob_cols.append(table[ctx[:, None], node])
        width = self.width
        bits_mat = np.concatenate(bit_cols, axis=1)
        probs_mat = np.concatenate(prob_cols, axis=1)
        rec = get_recorder()
        if rec.enabled:
            return self._encode_blocks_instrumented(
                rec,
                bits_mat.ravel().tolist(),
                probs_mat.ravel().tolist(),
                n,
                words_per_block,
            )
        n_blocks = -(-n // words_per_block)
        if n_blocks >= batch_min():
            return _encode_blocks_vec(bits_mat, probs_mat, n, words_per_block)
        bits_flat = bits_mat.ravel().tolist()
        probs_flat = probs_mat.ravel().tolist()
        return [
            _encode_span(
                bits_flat[start * width : min(n, start + words_per_block) * width],
                probs_flat[start * width : min(n, start + words_per_block) * width],
            )
            for start in range(0, n, words_per_block)
        ]

    def _encode_blocks_instrumented(
        self, rec, bits_flat, probs_flat, n, words_per_block
    ) -> List[bytes]:
        """Obs-on encode path: same spans through :func:`_encode_span_obs`,
        which attributes renormalisation bytes to the (stream, depth) bit
        that forced them — output stays byte-identical."""
        width = self.width
        labels = [
            (index, depth)
            for index, spec in enumerate(self.specs)
            for depth in range(spec.k)
        ]
        per_label: dict = {}
        flush_bits = 0
        payloads: List[bytes] = []
        for start in range(0, n, words_per_block):
            payload, block_flush = _encode_span_obs(
                bits_flat[start * width : min(n, start + words_per_block) * width],
                probs_flat[start * width : min(n, start + words_per_block) * width],
                labels,
                per_label,
            )
            flush_bits += block_flush
            payloads.append(payload)
        for (stream, depth), bits in sorted(per_label.items()):
            rec.add_bits(f"stream{stream}", bits)
            rec.count(f"samc.stream{stream}.depth{depth}.bits", bits)
        rec.add_bits("flush", flush_bits)
        rec.count("samc.blocks_encoded", len(payloads))
        rec.count("samc.words_encoded", n)
        return payloads

    # -- decode --------------------------------------------------------

    def decode_block(self, payload: bytes, word_count: int) -> List[int]:
        """Decode one cache block: fused Markov walk + range decoder."""
        word_mask, top, bot, prob_bits = _MASK, _TOP, _BOT, PROB_BITS
        data = payload
        dlen = len(data)
        low = 0
        rng = word_mask
        code = 0
        pos = 0
        for _ in range(4):
            code = ((code << 8) | (data[pos] if pos < dlen else 0)) & word_mask
            pos += 1
        streams = self._streams
        words: List[int] = []
        context = 0
        for _ in range(word_count):
            word = 0
            for shifts, nodes, p0_flat, ctx_mask in streams:
                base = context * nodes
                prefix = 0
                node_base = 0  # (1 << depth) - 1, tracked incrementally
                for shift in shifts:
                    p0 = p0_flat[base + node_base + prefix]
                    split = (rng >> prob_bits) * p0
                    if ((code - low) & word_mask) < split:
                        rng = split
                        prefix <<= 1
                    else:
                        low = (low + split) & word_mask
                        rng -= split
                        prefix = (prefix << 1) | 1
                        word |= 1 << shift
                    while True:  # repro: noqa loop-progress (pos advances every iteration; exits once the block's word count is met - differential-tested)
                        if ((low ^ (low + rng)) & word_mask) < top:
                            pass
                        elif rng < bot:
                            rng = (-low) & (bot - 1)
                        else:
                            break
                        code = ((code << 8) | (data[pos] if pos < dlen else 0)) & word_mask
                        pos += 1
                        low = (low << 8) & word_mask
                        rng = (rng << 8) & word_mask
                    node_base = node_base + node_base + 1
                context = prefix & ctx_mask
            words.append(word)
        return words

    def decode_blocks(
        self, payloads: Sequence[bytes], word_counts: Sequence[int]
    ) -> List[List[int]]:
        """Decode a batch of independent cache blocks.

        Byte-identical to calling :meth:`decode_block` per element; above
        :func:`batch_min` blocks the lockstep vectorised decoder runs,
        below it the fused scalar loop (which is faster there) does.
        """
        if len(payloads) != len(word_counts):
            raise ValueError("payloads and word_counts must align")
        if len(payloads) >= batch_min():
            compiled = self._compile_batch()
            if compiled is not None:
                return self._decode_blocks_vec(compiled, payloads, word_counts)
        return [
            self.decode_block(payload, count)
            for payload, count in zip(payloads, word_counts)
        ]

    def _decode_blocks_vec(
        self,
        compiled: list,
        payloads: Sequence[bytes],
        word_counts: Sequence[int],
    ) -> List[List[int]]:
        """The lockstep batch range decoder.

        All blocks share one bit schedule — (stream, depth) pairs in
        coding order — so the only per-block state is the coder triple
        and the Markov prefix/context, held as length-``batch`` arrays.
        Instead of the coder's ``code`` register we track
        ``D = (code - low) & MASK`` (the branch test needs only ``D``,
        saving one vector op per bit); finished blocks (past their word
        count) are masked out of renormalisation, so their read pointers
        freeze and live blocks march through *exactly* the scalar byte
        sequence.  Payload bytes live in one flat zero-padded array with
        a per-block stride — the same "reads past the end see zeros"
        convention as the scalar loop.
        """
        batch = len(payloads)
        if batch == 0:
            return []
        max_words = max(word_counts)
        if max_words == 0:
            return [[] for _ in payloads]
        stride = max(len(p) for p in payloads) + 8
        padded = bytearray(batch * stride)
        for i, payload in enumerate(payloads):
            padded[i * stride : i * stride + len(payload)] = payload
        flat = np.frombuffer(bytes(padded), dtype=np.uint8).astype(np.int64)
        wc = np.asarray(word_counts, dtype=np.int64)

        low = np.zeros(batch, dtype=np.int64)
        rng = np.full(batch, _MASK, dtype=np.int64)
        D = np.zeros(batch, dtype=np.int64)
        pos = np.arange(batch, dtype=np.int64) * stride
        for _ in range(4):
            D <<= 8
            D |= flat.take(pos)
            pos += 1
        context = np.zeros(batch, dtype=np.int64)
        words = np.zeros((batch, max_words), dtype=np.int64)

        # Preallocated scratch: the per-bit step runs allocation-free.
        idx = np.empty(batch, dtype=np.int64)
        ctx_base = np.empty(batch, dtype=np.int64)
        p0 = np.empty(batch, dtype=np.int64)
        split = np.empty(batch, dtype=np.int64)
        t1 = np.empty(batch, dtype=np.int64)
        t2 = np.empty(batch, dtype=np.int64)
        bs = np.empty(batch, dtype=np.int64)
        prefix = np.empty(batch, dtype=np.int64)
        bit = np.empty(batch, dtype=bool)
        under = np.empty(batch, dtype=bool)
        need = np.empty(batch, dtype=bool)
        shift_in = np.empty(batch, dtype=bool)
        word = np.empty(batch, dtype=np.int64)
        live = np.empty(batch, dtype=bool)

        for w in range(max_words):
            np.greater(wc, w, out=live)
            word[:] = 0
            for k, nodes, views, lut, ctx_mask in compiled:
                np.multiply(context, nodes, out=ctx_base)
                prefix[:] = 0
                for depth in range(k):
                    np.add(ctx_base, prefix, out=idx)
                    np.take(views[depth], idx, out=p0)
                    np.right_shift(rng, PROB_BITS, out=t1)
                    np.multiply(t1, p0, out=split)
                    np.greater_equal(D, split, out=bit)
                    np.multiply(split, bit, out=bs)
                    D -= bs
                    # `low` stays unmasked: every consumer below is
                    # invariant mod 2**32, and int64 cannot overflow
                    # within a block's 2**32-bounded additions.
                    low += bs
                    np.subtract(rng, split, out=t1)
                    np.copyto(rng, split)
                    np.copyto(rng, t1, where=bit)
                    prefix += prefix
                    prefix += bit
                    while True:
                        # Carry-less renorm condition, vectorised: a
                        # block shifts a byte when its top byte settled
                        # (low and low+rng agree) or its range
                        # underflowed below 2**16.
                        np.add(low, rng, out=t1)
                        np.bitwise_xor(t1, low, out=t1)
                        t1 &= _MASK
                        np.greater_equal(t1, _TOP, out=need)  # unsettled
                        np.less(rng, _BOT, out=under)
                        np.logical_not(need, out=shift_in)    # settled
                        np.logical_or(shift_in, under, out=shift_in)
                        np.logical_and(shift_in, live, out=shift_in)
                        if not shift_in.any():
                            break
                        np.logical_and(need, under, out=need)  # underflow
                        np.logical_and(need, live, out=need)
                        if need.any():
                            np.negative(low, out=t1)
                            t1 &= _BOT - 1
                            np.copyto(rng, t1, where=need)
                        np.left_shift(D, 8, out=t1)
                        t1 |= flat.take(pos)
                        t1 &= _MASK
                        np.copyto(D, t1, where=shift_in)
                        pos += shift_in
                        np.left_shift(low, 8, out=t1)
                        t1 &= _MASK
                        np.copyto(low, t1, where=shift_in)
                        np.left_shift(rng, 8, out=t1)
                        t1 &= _MASK
                        np.copyto(rng, t1, where=shift_in)
                np.take(lut, prefix, out=t2)
                word |= t2
                np.bitwise_and(prefix, ctx_mask, out=context)
            words[:, w] = word
        return [
            words[i, : word_counts[i]].tolist() for i in range(batch)
        ]


def _encode_blocks_vec(
    bits_mat: np.ndarray,
    probs_mat: np.ndarray,
    n_words: int,
    words_per_block: int,
) -> List[bytes]:
    """Lockstep batch range encoder: all blocks advance one bit at a time.

    The mirror image of ``_decode_blocks_vec`` — the bit/probability
    matrices from ``_walk_arrays`` are reshaped to (block, bit) and
    transposed to bit-major order, so per scheduled bit the inputs are
    contiguous row views and the only work is the vectorised coder step.
    Renormalisation bytes scatter into one ``uint8`` row per block
    (capacity 2 bytes per coded bit — a hard bound, since quantised
    probabilities are at least 2**-16); a short tail block is masked out
    once its own bits run dry.  Each block finishes with the *same*
    :func:`flush_interval` the scalar encoders use, so payloads are
    byte-identical to ``_encode_span``'s.
    """
    width = bits_mat.shape[1]
    n_blocks = -(-n_words // words_per_block)
    block_bits = words_per_block * width
    padded_words = n_blocks * words_per_block
    if padded_words != n_words:
        pad = np.zeros((padded_words - n_words, width), dtype=np.int64)
        bits_mat = np.concatenate([bits_mat, pad])
        probs_mat = np.concatenate([probs_mat, pad])
    bits_bm = np.ascontiguousarray(
        bits_mat.reshape(n_blocks, block_bits).T
    )
    probs_bm = np.ascontiguousarray(
        probs_mat.reshape(n_blocks, block_bits).T
    )
    bools_bm = bits_bm.astype(bool)
    nbits = np.full(n_blocks, block_bits, dtype=np.int64)
    tail_words = n_words - (n_blocks - 1) * words_per_block
    nbits[-1] = tail_words * width

    cap = 2 * block_bits + 8
    out = np.zeros(n_blocks * cap, dtype=np.uint8)
    opos = np.arange(n_blocks, dtype=np.int64) * cap
    low = np.zeros(n_blocks, dtype=np.int64)
    rng = np.full(n_blocks, _MASK, dtype=np.int64)
    split = np.empty(n_blocks, dtype=np.int64)
    t1 = np.empty(n_blocks, dtype=np.int64)
    bs = np.empty(n_blocks, dtype=np.int64)
    need = np.empty(n_blocks, dtype=bool)
    under = np.empty(n_blocks, dtype=bool)
    emit = np.empty(n_blocks, dtype=bool)
    live = np.empty(n_blocks, dtype=bool)

    for j in range(block_bits):
        np.greater(nbits, j, out=live)
        np.right_shift(rng, PROB_BITS, out=t1)
        np.multiply(t1, probs_bm[j], out=split)
        np.multiply(split, bits_bm[j], out=bs)
        low += bs  # bs is 0 past a tail block's end (padded bits are 0)
        # split becomes the candidate new rng; a finished block's rng
        # must stay frozen (its padded probability is 0, which would
        # zero rng and poison the final flush), hence the live mask.
        np.subtract(rng, split, out=t1)
        np.copyto(split, t1, where=bools_bm[j])
        np.copyto(rng, split, where=live)
        while True:
            np.add(low, rng, out=t1)
            np.bitwise_xor(t1, low, out=t1)
            t1 &= _MASK
            np.greater_equal(t1, _TOP, out=need)  # unsettled
            np.less(rng, _BOT, out=under)
            np.logical_not(need, out=emit)        # settled
            np.logical_or(emit, under, out=emit)
            np.logical_and(emit, live, out=emit)
            if not emit.any():
                break
            np.logical_and(need, under, out=need)  # underflow
            np.logical_and(need, live, out=need)
            if need.any():
                np.negative(low, out=t1)
                t1 &= _BOT - 1
                np.copyto(rng, t1, where=need)
            np.right_shift(low, 24, out=t1)
            t1 &= 0xFF
            out[opos[emit]] = t1[emit]
            opos += emit
            np.left_shift(low, 8, out=t1)
            t1 &= _MASK
            np.copyto(low, t1, where=emit)
            np.left_shift(rng, 8, out=t1)
            t1 &= _MASK
            np.copyto(rng, t1, where=emit)
    payloads: List[bytes] = []
    for i in range(n_blocks):
        base = i * cap
        buf = bytearray(out[base : opos[i]].tobytes())
        flush_interval(int(low[i]) & _MASK, int(rng[i]), buf)
        payloads.append(bytes(buf))
    return payloads


def _encode_span(bits: List[int], probs: List[int]) -> bytes:
    """Range-encode one block's bit/probability span.

    A line-for-line inlining of ``BinaryArithmeticEncoder.encode_bit`` +
    ``_normalize`` with the state in locals and renormalisation bytes
    appended directly to the output ``bytearray``; terminated by the
    shared :func:`flush_interval`, so the payload matches the reference
    encoder byte for byte.
    """
    mask, top, bot, prob_bits = _MASK, _TOP, _BOT, PROB_BITS
    low = 0
    rng = mask
    out = bytearray()
    append = out.append
    for bit, p0 in zip(bits, probs):
        split = (rng >> prob_bits) * p0
        if bit:
            low = (low + split) & mask
            rng -= split
        else:
            rng = split
        while True:
            if ((low ^ (low + rng)) & mask) < top:
                pass
            elif rng < bot:
                rng = (-low) & (bot - 1)
            else:
                break
            append((low >> 24) & 0xFF)
            low = (low << 8) & mask
            rng = (rng << 8) & mask
    flush_interval(low, rng, out)
    return bytes(out)


def _encode_span_obs(
    bits: List[int], probs: List[int], labels: List[tuple], per_label: dict
) -> Tuple[bytes, int]:
    """:func:`_encode_span` with bit attribution (obs-on path only).

    Identical coding loop; after each coded bit the renormalisation
    bytes just appended are charged (as bits) to that bit's
    ``(stream, depth)`` label in ``per_label``.  Returns the payload and
    the flush size in bits, which the caller accounts separately.
    """
    mask, top, bot, prob_bits = _MASK, _TOP, _BOT, PROB_BITS
    low = 0
    rng = mask
    out = bytearray()
    append = out.append
    n_labels = len(labels)
    position = 0
    for bit, p0 in zip(bits, probs):
        before = len(out)
        split = (rng >> prob_bits) * p0
        if bit:
            low = (low + split) & mask
            rng -= split
        else:
            rng = split
        while True:
            if ((low ^ (low + rng)) & mask) < top:
                pass
            elif rng < bot:
                rng = (-low) & (bot - 1)
            else:
                break
            append((low >> 24) & 0xFF)
            low = (low << 8) & mask
            rng = (rng << 8) & mask
        emitted = len(out) - before
        if emitted:
            label = labels[position % n_labels]
            per_label[label] = per_label.get(label, 0) + emitted * 8
        position += 1
    coded = len(out)
    flush_interval(low, rng, out)
    return bytes(out), (len(out) - coded) * 8


def compiled_model(model: SamcModel) -> CompiledSamcModel:
    """Compile ``model`` once and cache the result on the instance.

    Random-access block decompression calls this per refill; the cache
    makes repeat compilation free while keying on the model object
    itself, so a retrained model can never serve stale tables.
    """
    cached = getattr(model, "_fastpath_compiled", None)
    if cached is None:
        cached = CompiledSamcModel(model)
        model._fastpath_compiled = cached
    return cached
