"""Table-compiled SAMC kernels: vectorised training, fused coding loops.

The reference SAMC path costs three Python method calls and a numpy
scalar index *per coded bit* (``walk_encode`` → ``p0_quantized`` →
``encode_bit``).  This module removes all of it:

* **Training** (:func:`train_model_fast`) — the Markov walk is fully
  determined by the data, so the (context, node, bit) triple of every
  training observation is computed for the *whole program at once* with
  numpy array arithmetic, and the per-stream count tables accumulate via
  one :func:`numpy.bincount` per stream.
* **Encoding** (:meth:`CompiledSamcModel.encode_blocks`) — the per-bit
  quantised probabilities are gathered with one fancy-index per stream,
  then each block runs a single tight Python loop that fuses the Markov
  walk with the carry-less range coder, appending renormalisation bytes
  straight into a ``bytearray``.  The final flush is the *same function*
  the reference encoder uses (:func:`repro.entropy.arith.flush_interval`).
* **Decoding** (:meth:`CompiledSamcModel.decode_block`) — inherently
  sequential (each decoded bit steers the walk), so the win comes from
  compiling the frozen model into flat Python integer lists indexed by
  ``context * nodes + node`` and inlining the range decoder: zero
  attribute lookups or method calls per bit.

Every loop is a line-for-line port of the reference control flow, so the
output is bit-identical; the golden-vector and differential tests pin it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.entropy.arith import PROB_BITS, flush_interval
from repro.core.samc.model import SamcModel
from repro.obs import get_recorder

_MASK = 0xFFFFFFFF
_TOP = 1 << 24
_BOT = 1 << 16


def _walk_arrays(
    width: int,
    specs: Sequence,
    connect_bits: int,
    words: Sequence[int],
    words_per_block: int,
) -> Tuple[list, list]:
    """Vectorised Markov walk over a whole program.

    Returns, per stream, the ``(n_words, k)`` bit and node-index matrices
    plus the ``(n_words,)`` context vector — exactly the (context, node,
    bit) triples the reference walk visits, with the context reset at
    every cache-block boundary.
    """
    arr = np.asarray(words, dtype=np.int64)
    n = arr.shape[0]
    per_stream = []
    for spec in specs:
        k = spec.k
        shifts = np.array([width - 1 - p for p in spec.positions], dtype=np.int64)
        bits = (arr[:, None] >> shifts[None, :]) & 1
        prefix = np.zeros((n, k), dtype=np.int64)
        for depth in range(1, k):
            prefix[:, depth] = (prefix[:, depth - 1] << 1) | bits[:, depth - 1]
        node = ((1 << np.arange(k, dtype=np.int64)) - 1)[None, :] + prefix
        value = (prefix[:, k - 1] << 1) | bits[:, k - 1]
        mask = (1 << min(connect_bits, k)) - 1 if connect_bits else 0
        per_stream.append((bits, node, value & mask))
    contexts = []
    for index in range(len(specs)):
        if index == 0:
            ctx = np.empty(n, dtype=np.int64)
            if n:
                ctx[0] = 0
                ctx[1:] = per_stream[-1][2][:-1]
                ctx[::words_per_block] = 0  # context resets at block starts
        else:
            ctx = per_stream[index - 1][2]
        contexts.append(ctx)
    return per_stream, contexts


def train_model_fast(
    model: SamcModel, words: Sequence[int], words_per_block: int
) -> None:
    """Accumulate all training counts for ``words`` into ``model``.

    Bit-identical to calling :meth:`SamcModel.train_block` per cache
    block: the same (context, node, bit) events are counted, just via
    one bincount per stream instead of one numpy scalar ``+=`` per bit.
    """
    if not len(words):
        return
    per_stream, contexts = _walk_arrays(
        model.width, model.specs, model.connect_bits, words, words_per_block
    )
    for stream_model, (bits, node, _tail), ctx in zip(
        model.stream_models, per_stream, contexts
    ):
        nodes = stream_model.node_count
        flat = ((ctx[:, None] * nodes + node) * 2 + bits).ravel()
        counts = np.bincount(flat, minlength=stream_model.contexts * nodes * 2)
        stream_model.observe_counts(
            counts.reshape(stream_model.contexts, nodes, 2)
        )


class CompiledSamcModel:
    """A frozen :class:`SamcModel` compiled to flat integer tables.

    Construction converts every stream's quantised-probability table to a
    flat Python list (``p0[context * nodes + node]``) and precomputes the
    bit-placement shifts and context masks, so the coding loops touch
    only local integers.  Quantisation happened once at freeze time;
    nothing here ever re-quantises.
    """

    def __init__(self, model: SamcModel) -> None:
        self.width = model.width
        self.connect_bits = model.connect_bits
        self.specs = model.specs
        self._tables = [sm.frozen_table for sm in model.stream_models]
        self._streams = []
        prob_one = 1 << PROB_BITS
        for spec, stream_model in zip(model.specs, model.stream_models):
            k = spec.k
            shifts = tuple(model.width - 1 - p for p in spec.positions)
            mask = (1 << min(model.connect_bits, k)) - 1 if model.connect_bits else 0
            p0_flat = stream_model.frozen_table.ravel().tolist()
            # A probability of 0 (or PROB_ONE) collapses the range
            # coder's split to nothing and the decode renormalisation
            # loop below would never terminate; tables reaching this
            # point from deserialisation are untrusted, so reject here.
            if p0_flat and not (1 <= min(p0_flat) and max(p0_flat) <= prob_one - 1):
                from repro.resilience.errors import (
                    CATEGORY_STRUCTURE,
                    CorruptedStreamError,
                )

                raise CorruptedStreamError(
                    "compiled SAMC table holds probabilities outside "
                    f"[1, {prob_one - 1}]",
                    category=CATEGORY_STRUCTURE,
                )
            self._streams.append(
                (shifts, stream_model.node_count, p0_flat, mask)
            )

    # -- encode --------------------------------------------------------

    def encode_blocks(
        self, words: Sequence[int], words_per_block: int
    ) -> List[bytes]:
        """Encode a whole program, one payload per cache block."""
        n = len(words)
        if n == 0:
            return []
        per_stream, contexts = _walk_arrays(
            self.width, self.specs, self.connect_bits, words, words_per_block
        )
        bit_cols = []
        prob_cols = []
        for table, (bits, node, _tail), ctx in zip(
            self._tables, per_stream, contexts
        ):
            bit_cols.append(bits)
            prob_cols.append(table[ctx[:, None], node])
        width = self.width
        bits_flat = np.concatenate(bit_cols, axis=1).ravel().tolist()
        probs_flat = np.concatenate(prob_cols, axis=1).ravel().tolist()
        rec = get_recorder()
        if rec.enabled:
            return self._encode_blocks_instrumented(
                rec, bits_flat, probs_flat, n, words_per_block
            )
        return [
            _encode_span(
                bits_flat[start * width : min(n, start + words_per_block) * width],
                probs_flat[start * width : min(n, start + words_per_block) * width],
            )
            for start in range(0, n, words_per_block)
        ]

    def _encode_blocks_instrumented(
        self, rec, bits_flat, probs_flat, n, words_per_block
    ) -> List[bytes]:
        """Obs-on encode path: same spans through :func:`_encode_span_obs`,
        which attributes renormalisation bytes to the (stream, depth) bit
        that forced them — output stays byte-identical."""
        width = self.width
        labels = [
            (index, depth)
            for index, spec in enumerate(self.specs)
            for depth in range(spec.k)
        ]
        per_label: dict = {}
        flush_bits = 0
        payloads: List[bytes] = []
        for start in range(0, n, words_per_block):
            payload, block_flush = _encode_span_obs(
                bits_flat[start * width : min(n, start + words_per_block) * width],
                probs_flat[start * width : min(n, start + words_per_block) * width],
                labels,
                per_label,
            )
            flush_bits += block_flush
            payloads.append(payload)
        for (stream, depth), bits in sorted(per_label.items()):
            rec.add_bits(f"stream{stream}", bits)
            rec.count(f"samc.stream{stream}.depth{depth}.bits", bits)
        rec.add_bits("flush", flush_bits)
        rec.count("samc.blocks_encoded", len(payloads))
        rec.count("samc.words_encoded", n)
        return payloads

    # -- decode --------------------------------------------------------

    def decode_block(self, payload: bytes, word_count: int) -> List[int]:
        """Decode one cache block: fused Markov walk + range decoder."""
        word_mask, top, bot, prob_bits = _MASK, _TOP, _BOT, PROB_BITS
        data = payload
        dlen = len(data)
        low = 0
        rng = word_mask
        code = 0
        pos = 0
        for _ in range(4):
            code = ((code << 8) | (data[pos] if pos < dlen else 0)) & word_mask
            pos += 1
        streams = self._streams
        words: List[int] = []
        context = 0
        for _ in range(word_count):
            word = 0
            for shifts, nodes, p0_flat, ctx_mask in streams:
                base = context * nodes
                prefix = 0
                node_base = 0  # (1 << depth) - 1, tracked incrementally
                for shift in shifts:
                    p0 = p0_flat[base + node_base + prefix]
                    split = (rng >> prob_bits) * p0
                    if ((code - low) & word_mask) < split:
                        rng = split
                        prefix <<= 1
                    else:
                        low = (low + split) & word_mask
                        rng -= split
                        prefix = (prefix << 1) | 1
                        word |= 1 << shift
                    while True:
                        if ((low ^ (low + rng)) & word_mask) < top:
                            pass
                        elif rng < bot:
                            rng = (-low) & (bot - 1)
                        else:
                            break
                        code = ((code << 8) | (data[pos] if pos < dlen else 0)) & word_mask
                        pos += 1
                        low = (low << 8) & word_mask
                        rng = (rng << 8) & word_mask
                    node_base = node_base + node_base + 1
                context = prefix & ctx_mask
            words.append(word)
        return words


def _encode_span(bits: List[int], probs: List[int]) -> bytes:
    """Range-encode one block's bit/probability span.

    A line-for-line inlining of ``BinaryArithmeticEncoder.encode_bit`` +
    ``_normalize`` with the state in locals and renormalisation bytes
    appended directly to the output ``bytearray``; terminated by the
    shared :func:`flush_interval`, so the payload matches the reference
    encoder byte for byte.
    """
    mask, top, bot, prob_bits = _MASK, _TOP, _BOT, PROB_BITS
    low = 0
    rng = mask
    out = bytearray()
    append = out.append
    for bit, p0 in zip(bits, probs):
        split = (rng >> prob_bits) * p0
        if bit:
            low = (low + split) & mask
            rng -= split
        else:
            rng = split
        while True:
            if ((low ^ (low + rng)) & mask) < top:
                pass
            elif rng < bot:
                rng = (-low) & (bot - 1)
            else:
                break
            append((low >> 24) & 0xFF)
            low = (low << 8) & mask
            rng = (rng << 8) & mask
    flush_interval(low, rng, out)
    return bytes(out)


def _encode_span_obs(
    bits: List[int], probs: List[int], labels: List[tuple], per_label: dict
) -> Tuple[bytes, int]:
    """:func:`_encode_span` with bit attribution (obs-on path only).

    Identical coding loop; after each coded bit the renormalisation
    bytes just appended are charged (as bits) to that bit's
    ``(stream, depth)`` label in ``per_label``.  Returns the payload and
    the flush size in bits, which the caller accounts separately.
    """
    mask, top, bot, prob_bits = _MASK, _TOP, _BOT, PROB_BITS
    low = 0
    rng = mask
    out = bytearray()
    append = out.append
    n_labels = len(labels)
    position = 0
    for bit, p0 in zip(bits, probs):
        before = len(out)
        split = (rng >> prob_bits) * p0
        if bit:
            low = (low + split) & mask
            rng -= split
        else:
            rng = split
        while True:
            if ((low ^ (low + rng)) & mask) < top:
                pass
            elif rng < bot:
                rng = (-low) & (bot - 1)
            else:
                break
            append((low >> 24) & 0xFF)
            low = (low << 8) & mask
            rng = (rng << 8) & mask
        emitted = len(out) - before
        if emitted:
            label = labels[position % n_labels]
            per_label[label] = per_label.get(label, 0) + emitted * 8
        position += 1
    coded = len(out)
    flush_interval(low, rng, out)
    return bytes(out), (len(out) - coded) * 8


def compiled_model(model: SamcModel) -> CompiledSamcModel:
    """Compile ``model`` once and cache the result on the instance.

    Random-access block decompression calls this per refill; the cache
    makes repeat compilation free while keying on the model object
    itself, so a retrained model can never serve stale tables.
    """
    cached = getattr(model, "_fastpath_compiled", None)
    if cached is None:
        cached = CompiledSamcModel(model)
        model._fastpath_compiled = cached
    return cached
