"""Hot-path codec kernels (the performance layer).

The reference implementations in :mod:`repro.core` and
:mod:`repro.baselines` are written for clarity: bit-at-a-time loops over
Python objects, one method call per coded bit.  This package holds the
*fast paths* — table-compiled, batch-oriented rewrites of the same
algorithms that are **bit-identical by construction and by test**:

* :mod:`repro.fastpath.samc_kernel` — compiles a frozen
  :class:`~repro.core.samc.model.SamcModel` into flat integer tables,
  vectorises training with :func:`numpy.bincount`, and fuses the Markov
  walk with the range coder into single tight loops.
* :mod:`repro.fastpath.lz_kernel` — memoryview/chunked match extension
  for LZSS and integer-keyed dictionary lookups for LZW.

Selection is dynamic: every dispatch site calls :func:`fastpath_enabled`
so the environment variable ``REPRO_FASTPATH=0`` is an *escape hatch*
that reinstates the reference implementations at any point, even
mid-process (the differential tests flip it per-case).  The reference
code is the oracle — golden-vector and hypothesis differential tests pin
the two paths to byte equality.

``FASTPATH_VERSION`` tags the pipeline's codec-config fingerprints
(:mod:`repro.pipeline.fingerprint`): bump it if a kernel change could
ever alter coded output, so cached results from older kernels are
orphaned rather than served.
"""

from __future__ import annotations

import os

#: Version of the fastpath kernels, folded into pipeline fingerprints.
#: The kernels are bit-identical to the reference today, so this only
#: needs bumping if that ever stops being true — but the tag means a
#: stale cache can never silently mix kernel generations.
FASTPATH_VERSION = 1


def fastpath_enabled() -> bool:
    """True unless the ``REPRO_FASTPATH=0`` escape hatch is set.

    Read from the environment on every call (it is one dict lookup) so
    tests and CI can flip paths without re-importing anything.
    """
    return os.environ.get("REPRO_FASTPATH", "1") != "0"


__all__ = ["FASTPATH_VERSION", "fastpath_enabled"]
