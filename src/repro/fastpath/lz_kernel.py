"""Fast LZ kernels: chunked LZSS match extension, integer-keyed LZW.

Token-for-token and byte-for-byte identical to the reference
implementations in :mod:`repro.baselines.lzss` / :mod:`repro.baselines.lzw`
(differential tests pin this); the speed comes from three structural
changes, not algorithmic ones:

* LZSS match extension compares 16-byte ``memoryview`` slices and only
  falls back to a byte loop inside the final chunk, instead of one
  Python comparison per matched byte;
* hash-chain keys are packed 24-bit integers rather than 3-byte
  ``bytes`` slices (no per-position object allocation);
* LZW's dictionary maps ``(prefix_code << 8) | byte`` integers instead
  of growing byte strings — prefix codes are unique per string, so the
  lookups are equivalent and O(1) with tiny keys.
"""

from __future__ import annotations

from typing import List

from repro.bitstream.io import BitWriter


def tokenize_fast(data: bytes) -> List:
    """Greedy LZSS parse, identical to the reference ``tokenize``."""
    from repro.baselines.lzss import (
        MAX_CHAIN,
        MAX_MATCH,
        MIN_MATCH,
        WINDOW_SIZE,
        Literal,
        Match,
    )

    tokens: List = []
    n = len(data)
    if n == 0:
        return tokens
    view = memoryview(data)
    chains: dict = {}
    chains_get = chains.get
    append_token = tokens.append
    pos = 0
    while pos < n:
        best_length = 0
        best_distance = 0
        if pos + MIN_MATCH <= n:
            key = (data[pos] << 16) | (data[pos + 1] << 8) | data[pos + 2]
            chain = chains_get(key)
            if chain:
                limit = min(MAX_MATCH, n - pos)
                for candidate in reversed(chain):
                    if pos - candidate > WINDOW_SIZE:
                        break
                    # Screening byte: a candidate can only *strictly*
                    # beat best_length if it also matches at offset
                    # best_length, so one compare rejects most of the
                    # chain without touching the extension loop.
                    if best_length and (
                        best_length >= limit
                        or data[candidate + best_length] != data[pos + best_length]
                    ):
                        continue
                    # Chain hits share the 3-byte key, so extension
                    # starts at MIN_MATCH: 16-byte view compares first,
                    # a byte loop only inside the mismatching chunk.
                    length = MIN_MATCH
                    while (
                        length + 16 <= limit
                        and view[candidate + length : candidate + length + 16]
                        == view[pos + length : pos + length + 16]
                    ):
                        length += 16
                    while length < limit and data[candidate + length] == data[pos + length]:
                        length += 1
                    if length > best_length:
                        best_length = length
                        best_distance = pos - candidate
                        if length >= MAX_MATCH:
                            break
        if best_length >= MIN_MATCH:
            append_token(Match(best_length, best_distance))
            end = pos + best_length
            while pos < end:
                if pos + MIN_MATCH <= n:
                    key = (data[pos] << 16) | (data[pos + 1] << 8) | data[pos + 2]
                    chain = chains_get(key)
                    if chain is None:
                        chains[key] = [pos]
                    else:
                        chain.append(pos)
                        if len(chain) > MAX_CHAIN:
                            del chain[0 : len(chain) - MAX_CHAIN]
                pos += 1
        else:
            append_token(Literal(data[pos]))
            if pos + MIN_MATCH <= n:
                key = (data[pos] << 16) | (data[pos + 1] << 8) | data[pos + 2]
                chain = chains_get(key)
                if chain is None:
                    chains[key] = [pos]
                else:
                    chain.append(pos)
                    if len(chain) > MAX_CHAIN:
                        del chain[0 : len(chain) - MAX_CHAIN]
            pos += 1
    return tokens


def tokenize_blocks_fast(blocks) -> List[List]:
    """Batch LZSS parse over independent blocks.

    Two batch-level structural wins over calling :func:`tokenize_fast`
    per block: the 24-bit hash-chain keys for *every* position of *every*
    block are computed in one vectorised numpy pass over the
    concatenated batch (the only data-independent part of the matcher —
    match extension itself is steered by the data and stays scalar), and
    identical blocks parse once (service batches repeat payloads, and a
    greedy parse is a pure function of the block bytes).  Token-for-token
    identical to the per-block parse.
    """
    import numpy as np

    datas = [bytes(block) for block in blocks]
    arr = np.frombuffer(b"".join(datas), dtype=np.uint8).astype(np.int64)
    keys_all = None
    if len(arr) >= 3:
        keys_all = (arr[:-2] << 16) | (arr[1:-1] << 8) | arr[2:]
    out: List[List] = []
    seen: dict = {}
    offset = 0
    for data in datas:
        n = len(data)
        tokens = seen.get(data)
        if tokens is None:
            if n >= 3:
                # Window keys never straddle blocks: position n-3 is the
                # last one the matcher consults.
                keys = keys_all[offset : offset + n - 2].tolist()
            else:
                keys = []
            tokens = _tokenize_with_keys(data, keys)
            seen[data] = tokens
        out.append(tokens)
        offset += n
    return out


def _tokenize_with_keys(data: bytes, keys: List[int]) -> List:
    """:func:`tokenize_fast` with the hash keys precomputed by the batch
    caller; the parse itself is the same greedy matcher."""
    from repro.baselines.lzss import (
        MAX_CHAIN,
        MAX_MATCH,
        MIN_MATCH,
        WINDOW_SIZE,
        Literal,
        Match,
    )

    tokens: List = []
    n = len(data)
    if n == 0:
        return tokens
    view = memoryview(data)
    chains: dict = {}
    chains_get = chains.get
    append_token = tokens.append
    pos = 0
    while pos < n:
        best_length = 0
        best_distance = 0
        if pos + MIN_MATCH <= n:
            key = keys[pos]
            chain = chains_get(key)
            if chain:
                limit = min(MAX_MATCH, n - pos)
                for candidate in reversed(chain):
                    if pos - candidate > WINDOW_SIZE:
                        break
                    if best_length and (
                        best_length >= limit
                        or data[candidate + best_length] != data[pos + best_length]
                    ):
                        continue
                    length = MIN_MATCH
                    while (
                        length + 16 <= limit
                        and view[candidate + length : candidate + length + 16]
                        == view[pos + length : pos + length + 16]
                    ):
                        length += 16
                    while length < limit and data[candidate + length] == data[pos + length]:
                        length += 1
                    if length > best_length:
                        best_length = length
                        best_distance = pos - candidate
                        if length >= MAX_MATCH:
                            break
        if best_length >= MIN_MATCH:
            append_token(Match(best_length, best_distance))
            end = pos + best_length
            while pos < end:
                if pos + MIN_MATCH <= n:
                    chain = chains_get(keys[pos])
                    if chain is None:
                        chains[keys[pos]] = [pos]
                    else:
                        chain.append(pos)
                        if len(chain) > MAX_CHAIN:
                            del chain[0 : len(chain) - MAX_CHAIN]
                pos += 1
        else:
            append_token(Literal(data[pos]))
            if pos + MIN_MATCH <= n:
                chain = chains_get(keys[pos])
                if chain is None:
                    chains[keys[pos]] = [pos]
                else:
                    chain.append(pos)
                    if len(chain) > MAX_CHAIN:
                        del chain[0 : len(chain) - MAX_CHAIN]
            pos += 1
    return tokens


def lzw_compress_blocks_fast(blocks) -> List[bytes]:
    """Batch LZW over independent blocks.

    LZW's dictionary evolves sequentially within a stream, so the batch
    win is structural: identical blocks compress once (the parse is a
    pure function of the input), distinct ones run the integer-keyed
    kernel back to back.  Byte-identical to per-block calls.
    """
    out: List[bytes] = []
    seen: dict = {}
    for block in blocks:
        data = bytes(block)
        payload = seen.get(data)
        if payload is None:
            payload = lzw_compress_fast(data)
            seen[data] = payload
        out.append(payload)
    return out


def lzw_compress_fast(data: bytes) -> bytes:
    """LZW with integer dictionary keys; output matches the reference.

    A prefix's dictionary code uniquely identifies its byte string
    (single bytes are their own codes), so keying on
    ``(prefix_code << 8) | next_byte`` performs exactly the lookups the
    reference does on ``prefix_string + next_byte`` — without building
    a byte string per input position.
    """
    from repro.baselines.lzw import CLEAR_CODE, FIRST_CODE, MAX_BITS, MIN_BITS

    writer = BitWriter()
    writer.write_bits(len(data) & 0xFFFFFFFF, 32)
    if not data:
        return writer.getvalue()

    table: dict = {}
    table_get = table.get
    write_bits = writer.write_bits
    max_code = 1 << MAX_BITS
    next_code = FIRST_CODE
    width = MIN_BITS
    clear_codes = 0
    prefix = data[0]
    for byte in data[1:]:
        key = (prefix << 8) | byte
        code = table_get(key)
        if code is not None:
            prefix = code
            continue
        write_bits(prefix, width)
        if next_code < max_code:
            table[key] = next_code
            next_code += 1
            if next_code > (1 << width) and width < MAX_BITS:
                width += 1
        else:
            # Dictionary full: emit CLEAR and start over, like compress
            # does when its ratio-check fires.
            write_bits(CLEAR_CODE, width)
            table.clear()
            next_code = FIRST_CODE
            width = MIN_BITS
            clear_codes += 1
        prefix = byte
    write_bits(prefix, width)
    if clear_codes:
        from repro.obs import get_recorder

        get_recorder().count("lzw.clear_codes", clear_codes)
    return writer.getvalue()
