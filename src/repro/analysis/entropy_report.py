"""Compressibility analysis: where a program's redundancy lives.

The paper frames code compression as a CAD problem — "to understand the
limits of program compressibility".  This module measures those limits
for a concrete program: per-stream zero-order and Markov entropies, the
ideal coded size each implies, and how close SAMC and SADC actually get.
Used by the ``analyze`` CLI command and the analysis tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.bitstream.fields import chunk_words
from repro.core.samc.streams import contiguous_streams
from repro.entropy.stats import entropy_bits, markov_stream_entropy
from repro.isa.mips.streams import split_streams


@dataclass
class EntropyReport:
    """Per-stream entropy breakdown of one MIPS program."""

    instructions: int
    #: zero-order entropy (bits/symbol) per SADC stream.
    field_entropy: Dict[str, float]
    #: raw width (bits/symbol) per SADC stream.
    field_width: Dict[str, int]
    #: first-order Markov entropy per SAMC 8-bit stream (bits/bit * 8).
    samc_stream_bits: Dict[str, float]
    #: ideal bits/instruction under each model.
    zero_order_bound: float
    markov_bound: float

    def summary(self) -> Dict[str, float]:
        """The headline numbers as a flat mapping."""
        out: Dict[str, float] = {
            "instructions": float(self.instructions),
            "zero-order bound (bits/instr)": self.zero_order_bound,
            "markov bound (bits/instr)": self.markov_bound,
            "zero-order ratio bound": self.zero_order_bound / 32.0,
            "markov ratio bound": self.markov_bound / 32.0,
        }
        for name, value in self.field_entropy.items():
            out[f"H({name}) bits/sym (width {self.field_width[name]})"] = value
        return out


_FIELD_WIDTHS = {"opcodes": 8, "registers": 5, "imm16": 16, "imm26": 26}


def analyze_mips(code: bytes) -> EntropyReport:
    """Full entropy breakdown of a MIPS code image."""
    words = chunk_words(code, 4)
    streams = split_streams(code)
    n = max(1, len(streams.opcodes))

    field_entropy = {
        "opcodes": entropy_bits(Counter(streams.opcodes)),
        "registers": entropy_bits(Counter(streams.registers)),
        "imm16": entropy_bits(Counter(streams.imm16)),
        "imm26": entropy_bits(Counter(streams.imm26)),
    }

    # Ideal bits/instruction if each SADC stream were coded at its
    # zero-order entropy (weighted by entries per instruction).
    zero_order_bound = (
        field_entropy["opcodes"] * len(streams.opcodes)
        + field_entropy["registers"] * len(streams.registers)
        + field_entropy["imm16"] * len(streams.imm16)
        + field_entropy["imm26"] * len(streams.imm26)
    ) / n

    samc_stream_bits = {}
    markov_bound = 0.0
    for index, positions in enumerate(contiguous_streams(32, 4)):
        per_bit = markov_stream_entropy(words, positions, 32)
        samc_stream_bits[f"stream{index}"] = 8 * per_bit
        markov_bound += 8 * per_bit

    return EntropyReport(
        instructions=len(words),
        field_entropy=field_entropy,
        field_width=dict(_FIELD_WIDTHS),
        samc_stream_bits=samc_stream_bits,
        zero_order_bound=zero_order_bound,
        markov_bound=markov_bound,
    )
