"""Plain-text rendering of experiment results (the figures as tables)."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.analysis.experiments import SuiteRow, average_ratios, suite_algorithms


def format_suite(rows: Sequence[SuiteRow], title: str = "") -> str:
    """Render per-benchmark ratios as an aligned text table.

    Rows from a degraded pipeline run may be missing cells; those render
    as ``-`` and averages are taken over the present values, so a
    partial sweep still produces a readable (and visibly partial) table.
    Complete rows render byte-identically to the pre-resilience format.
    """
    if not rows:
        return "(no results)"
    algorithms = suite_algorithms(rows)
    name_width = max(len("benchmark"), max(len(r.benchmark) for r in rows))
    header = "benchmark".ljust(name_width) + "".join(
        f"  {algorithm:>9}" for algorithm in algorithms
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = "".join(
            f"  {row.ratios[a]:9.3f}" if a in row.ratios else f"  {'-':>9}"
            for a in algorithms
        )
        lines.append(row.benchmark.ljust(name_width) + cells)
    averages = average_ratios(rows)
    lines.append("-" * len(header))
    lines.append(
        "average".ljust(name_width)
        + "".join(
            f"  {averages[a]:9.3f}" if a in averages else f"  {'-':>9}"
            for a in algorithms
        )
    )
    return "\n".join(lines)


def format_averages(
    averages_by_isa: Mapping[str, Mapping[str, float]], title: str = ""
) -> str:
    """Render the Figure-9 style cross-ISA average comparison."""
    isas = list(averages_by_isa.keys())
    algorithms: Dict[str, None] = {}
    for averages in averages_by_isa.values():
        for algorithm in averages:
            algorithms.setdefault(algorithm)
    header = "algorithm".ljust(12) + "".join(f"  {isa:>8}" for isa in isas)
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for algorithm in algorithms:
        cells = "".join(
            f"  {averages_by_isa[isa].get(algorithm, float('nan')):8.3f}"
            for isa in isas
        )
        lines.append(algorithm.ljust(12) + cells)
    return "\n".join(lines)


def format_mapping(mapping: Mapping[str, object], title: str = "") -> str:
    """Key/value block for miscellaneous reports."""
    width = max((len(str(k)) for k in mapping), default=1)
    lines = [title] if title else []
    for key, value in mapping.items():
        rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
        lines.append(f"{str(key).ljust(width)}  {rendered}")
    return "\n".join(lines)
