"""Experiment drivers: the compression-ratio sweeps behind Figs. 7-9.

Each figure is "for every benchmark, the ratio compressed/original under
each algorithm"; :func:`run_suite` produces exactly those series, and
:func:`average_ratios` collapses them into the Figure-9 averages.  The
sweeps run on :mod:`repro.pipeline`, so they parallelise across
processes (``jobs``) and memoise through the content-addressed cache;
``jobs=1`` with no cache directory is the serial reference path and
produces bit-identical figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.baselines.gzipish import gzipish_compress
from repro.baselines.lzw import lzw_compress
from repro.core.sadc import MipsSadcCodec, X86SadcCodec
from repro.core.samc import SamcCodec
from repro.pipeline import (
    ExperimentJob,
    PipelineReport,
    ResultCache,
    run_pipeline,
)
from repro.workloads.suite import Program, generate_benchmark
from repro.workloads.profiles import BENCHMARK_NAMES

#: Figure 7/8 algorithm set, in the figures' legend order.
FIGURE_ALGORITHMS = ("compress", "gzip", "SAMC", "SADC")
#: Figure 9 adds the byte-Huffman prior art.
ALL_ALGORITHMS = ("compress", "gzip", "huffman", "SAMC", "SADC")


def compression_ratio(
    code: bytes, algorithm: str, isa: str, block_size: int = 32
) -> float:
    """Compressed/original ratio of one algorithm on one code image.

    File-oriented baselines (compress, gzip) have no blocks, tables, or
    LAT; block-oriented algorithms (huffman, SAMC, SADC) report the full
    honest total including model tables and the compacted LAT.
    """
    if block_size <= 0:
        raise ValueError(
            f"block_size must be a positive number of bytes, got {block_size}"
        )
    if not code:
        return 1.0
    if algorithm == "compress":
        return len(lzw_compress(code)) / len(code)
    if algorithm == "gzip":
        return len(gzipish_compress(code)) / len(code)
    if algorithm == "huffman":
        return ByteHuffmanCodec(block_size).compress(code).compression_ratio
    if algorithm == "SAMC":
        codec = (
            SamcCodec.for_mips(block_size=block_size)
            if isa == "mips"
            else SamcCodec.for_bytes(block_size=block_size)
        )
        return codec.compress(code).compression_ratio
    if algorithm == "SADC":
        codec = (
            MipsSadcCodec(block_size=block_size)
            if isa == "mips"
            else X86SadcCodec(block_size=block_size)
        )
        return codec.compress(code).compression_ratio
    raise ValueError(f"unknown algorithm {algorithm!r}")


@dataclass
class SuiteRow:
    """One benchmark's ratios across algorithms (one bar group)."""

    benchmark: str
    size_bytes: int
    ratios: Dict[str, float] = field(default_factory=dict)


def run_benchmark(
    program: Program,
    algorithms: Sequence[str] = FIGURE_ALGORITHMS,
    block_size: int = 32,
) -> SuiteRow:
    """All algorithms on one generated benchmark."""
    row = SuiteRow(benchmark=program.name, size_bytes=program.size_bytes)
    for algorithm in algorithms:
        row.ratios[algorithm] = compression_ratio(
            program.code, algorithm, program.isa, block_size
        )
    return row


def suite_jobs(
    isa: str,
    algorithms: Sequence[str] = FIGURE_ALGORITHMS,
    scale: float = 1.0,
    block_size: int = 32,
    names: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[ExperimentJob]:
    """The job list for one figure sweep, benchmark-major order."""
    return [
        ExperimentJob(
            benchmark=name,
            isa=isa,
            algorithm=algorithm,
            block_size=block_size,
            scale=scale,
            seed=seed,
        )
        for name in (names or BENCHMARK_NAMES)
        for algorithm in algorithms
    ]


def run_suite_with_report(
    isa: str,
    algorithms: Sequence[str] = FIGURE_ALGORITHMS,
    scale: float = 1.0,
    block_size: int = 32,
    names: Optional[Sequence[str]] = None,
    seed: int = 0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    job_timeout: Optional[float] = None,
    retries: int = 0,
) -> Tuple[List[SuiteRow], PipelineReport]:
    """The full figure sweep, plus the pipeline's timing/cache report.

    When ``retries``/``job_timeout`` are set, a failing job degrades its
    cell (reported in ``report.failures``) instead of aborting the sweep;
    the returned rows simply omit the missing ratios.
    """
    job_list = suite_jobs(isa, algorithms, scale, block_size, names, seed)
    report = run_pipeline(
        job_list,
        max_workers=jobs,
        cache=cache,
        job_timeout=job_timeout,
        retries=retries,
    )
    rows: List[SuiteRow] = []
    by_benchmark: Dict[str, SuiteRow] = {}
    for result in report.results:
        row = by_benchmark.get(result.job.benchmark)
        if row is None:
            row = SuiteRow(
                benchmark=result.job.benchmark, size_bytes=result.bytes_in
            )
            by_benchmark[result.job.benchmark] = row
            rows.append(row)
        row.ratios[result.job.algorithm] = result.ratio
    return rows, report


def run_suite(
    isa: str,
    algorithms: Sequence[str] = FIGURE_ALGORITHMS,
    scale: float = 1.0,
    block_size: int = 32,
    names: Optional[Sequence[str]] = None,
    seed: int = 0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    job_timeout: Optional[float] = None,
    retries: int = 0,
) -> List[SuiteRow]:
    """The full figure sweep: every benchmark × every algorithm."""
    rows, _report = run_suite_with_report(
        isa,
        algorithms,
        scale,
        block_size,
        names,
        seed,
        jobs=jobs,
        cache=cache,
        job_timeout=job_timeout,
        retries=retries,
    )
    return rows


def suite_algorithms(rows: Sequence[SuiteRow]) -> List[str]:
    """Union of algorithm columns across rows, first-seen order.

    A degraded run can leave a row missing cells — including its first
    row — so column discovery must look at every row, not just
    ``rows[0]``.  Complete runs get exactly the legend order they always
    did (every row has every key, first row wins).
    """
    algorithms: Dict[str, None] = {}
    for row in rows:
        for algorithm in row.ratios:
            algorithms.setdefault(algorithm)
    return list(algorithms)


def average_ratios(rows: Sequence[SuiteRow]) -> Dict[str, float]:
    """Per-algorithm mean ratio across benchmarks (Figure 9's bars).

    Averages are taken over the rows that *have* the cell, so a
    degraded sweep still yields figures (over fewer benchmarks).
    """
    if not rows:
        return {}
    averages: Dict[str, float] = {}
    for algorithm in suite_algorithms(rows):
        values = [
            row.ratios[algorithm] for row in rows if algorithm in row.ratios
        ]
        if values:
            averages[algorithm] = sum(values) / len(values)
    return averages
