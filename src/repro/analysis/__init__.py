"""Experiment drivers and result formatting."""

from repro.analysis.experiments import (
    ALL_ALGORITHMS,
    FIGURE_ALGORITHMS,
    SuiteRow,
    average_ratios,
    compression_ratio,
    run_benchmark,
    run_suite,
    run_suite_with_report,
    suite_jobs,
)
from repro.analysis.entropy_report import EntropyReport, analyze_mips
from repro.analysis.tables import format_averages, format_mapping, format_suite

__all__ = [
    "ALL_ALGORITHMS",
    "EntropyReport",
    "FIGURE_ALGORITHMS",
    "analyze_mips",
    "SuiteRow",
    "average_ratios",
    "compression_ratio",
    "format_averages",
    "format_mapping",
    "format_suite",
    "run_benchmark",
    "run_suite",
    "run_suite_with_report",
    "suite_jobs",
]
