"""tab-streams — Section 3: stream subdivision choices.

The paper reports (a) one Markov tree over whole 32-bit instructions is
infeasible, (b) four 8-bit streams are "close to optimal", and (c) the
correlation-seeded random-exchange search finds non-contiguous stream
maps with lower entropy.  We sweep the stream count and compare
contiguous vs optimised assignments by model entropy and real ratio.
"""

import pytest

from benchmarks.conftest import publish
from repro.analysis.tables import format_mapping
from repro.bitstream.fields import chunk_words
from repro.core.samc import SamcCodec
from repro.core.samc.streams import (
    contiguous_streams,
    optimize_streams,
    total_model_entropy,
)

#: One stream of 32 bits is the configuration the paper rules out — it
#: would need (2**33 - 2)/2 = 2**32 - 1 stored probabilities.  We assert
#: that arithmetic below instead of allocating it.
STREAM_COUNTS = (2, 4, 8, 16)


def _sweep(code):
    words = chunk_words(code, 4)
    results = {}
    results["1-stream probabilities (infeasible)"] = float(2**32 - 1)
    for count in STREAM_COUNTS:
        streams = contiguous_streams(32, count)
        codec = SamcCodec.for_mips(streams=streams)
        image = codec.compress(code)
        # Total ratio, not payload: fewer/wider streams always model
        # better but their probability memory explodes exponentially —
        # "reasonable compression without requiring excessive storage"
        # is precisely this trade.
        results[f"{count}-stream ratio"] = image.compression_ratio
        results[f"{count}-stream model KB"] = image.model_bytes / 1024.0
    # Optimiser comparison at the paper's 4-stream configuration.
    sample = words[: min(len(words), 3000)]
    contiguous_entropy = total_model_entropy(
        sample, contiguous_streams(32, 4), 32
    )
    _streams, optimized_entropy = optimize_streams(
        sample, 32, 4, iterations=120
    )
    results["4-stream contiguous entropy (bits/instr)"] = contiguous_entropy
    results["4-stream optimized entropy (bits/instr)"] = optimized_entropy
    return results


@pytest.mark.benchmark(group="tab-streams")
def test_stream_ablation(benchmark, mips_gcc, results_dir):
    results = benchmark.pedantic(_sweep, args=(mips_gcc,),
                                 rounds=1, iterations=1)
    publish(results_dir, "tab_streams",
            format_mapping(results, title="SAMC stream subdivision ablation"))

    # On total stored size (payload + probability memory) the paper's
    # 4x8 configuration is the sweet spot: 2x16 models better but its
    # tables dwarf the savings; 8/16 streams model too little.
    best = min(results[f"{c}-stream ratio"] for c in STREAM_COUNTS)
    assert results["4-stream ratio"] <= best + 0.02
    assert results["2-stream model KB"] > 30 * results["4-stream model KB"]
    # The optimiser never does worse than the contiguous assignment.
    assert (results["4-stream optimized entropy (bits/instr)"]
            <= results["4-stream contiguous entropy (bits/instr)"] + 1e-9)
