"""Fastpath/reference output identity over the benchmark workload.

CI's benchmark smoke step runs this (with ``--benchmark-disable``) under
both ``REPRO_FASTPATH`` settings: every assertion here compares *coded
bytes*, never timings, so the step stays deterministic on any runner.
Each test flips the escape hatch in-process and checks the two paths
produce byte-identical compressed output on the same mid-size program
the throughput group times.
"""

from __future__ import annotations

import pytest

from repro.baselines.gzipish import gzipish_compress, gzipish_decompress
from repro.baselines.lzss import tokenize
from repro.baselines.lzw import lzw_compress, lzw_decompress
from repro.core.samc import SamcCodec
from repro.workloads.suite import generate_benchmark


@pytest.fixture(scope="module")
def code() -> bytes:
    return generate_benchmark("ijpeg", "mips", scale=0.5, seed=1).code


@pytest.fixture(scope="module")
def x86_code() -> bytes:
    return generate_benchmark("ijpeg", "x86", scale=0.5, seed=1).code


def _both_paths(monkeypatch, fn):
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    reference = fn()
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    fast = fn()
    return reference, fast


def test_samc_mips_identity(monkeypatch, code):
    reference, fast = _both_paths(
        monkeypatch, lambda: SamcCodec.for_mips().compress(code)
    )
    assert reference.blocks == fast.blocks
    assert SamcCodec.for_mips().decompress(fast) == code


def test_samc_bytes_identity(monkeypatch, x86_code):
    reference, fast = _both_paths(
        monkeypatch, lambda: SamcCodec.for_bytes().compress(x86_code)
    )
    assert reference.blocks == fast.blocks
    assert SamcCodec.for_bytes().decompress(fast) == x86_code


def test_samc_decode_identity(monkeypatch, code):
    image = SamcCodec.for_mips().compress(code)

    def decode_all():
        codec = SamcCodec.for_mips()
        return [
            codec.decompress_block(image, index)
            for index in range(image.block_count())
        ]

    reference, fast = _both_paths(monkeypatch, decode_all)
    assert reference == fast
    assert b"".join(fast) == code


def test_samc_batch_decode_identity(monkeypatch, code):
    """The full-image batch decode equals the per-block loop on both
    paths — with the vector threshold forced down so the lockstep
    kernel itself runs, not the small-batch scalar fallback."""
    image = SamcCodec.for_mips().compress(code)
    monkeypatch.setenv("REPRO_BATCH_MIN", "1")

    def decode_batch():
        codec = SamcCodec.for_mips()
        return codec.decompress_blocks(image, range(image.block_count()))

    reference, fast = _both_paths(monkeypatch, decode_batch)
    assert reference == fast
    assert b"".join(fast) == code


def test_byte_huffman_batch_decode_identity(monkeypatch, code):
    from repro.baselines.byte_huffman import ByteHuffmanCodec

    image = ByteHuffmanCodec().compress(code)

    def decode_batch():
        codec = ByteHuffmanCodec()
        return codec.decompress_blocks(image, range(image.block_count()))

    reference, fast = _both_paths(monkeypatch, decode_batch)
    assert reference == fast
    assert b"".join(fast) == code


def test_samc_batch_encode_identity(monkeypatch, code):
    """Vectorised batch encode emits the scalar encoder's exact blocks."""
    image = SamcCodec.for_mips().compress(code)
    model = image.metadata["model"]
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    monkeypatch.setenv("REPRO_BATCH_MIN", "1")
    vec = SamcCodec.for_mips().compress_with_model(code, model)
    assert vec.blocks == image.blocks


def test_lzss_tokenize_identity(monkeypatch, code):
    reference, fast = _both_paths(monkeypatch, lambda: tokenize(code))
    assert reference == fast


def test_lzw_identity(monkeypatch, code):
    reference, fast = _both_paths(monkeypatch, lambda: lzw_compress(code))
    assert reference == fast
    assert lzw_decompress(fast) == code


def test_gzipish_identity(monkeypatch, code):
    reference, fast = _both_paths(monkeypatch, lambda: gzipish_compress(code))
    assert reference == fast
    assert gzipish_decompress(fast) == code
