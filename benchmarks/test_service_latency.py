"""Service round-trip latency microbenchmarks (pytest-benchmark).

Engineering numbers for the daemon, not a paper table: the full wire
round-trip cost — client encode, RF01 framing, socket hop, queue,
executor, reply — for a fast stream codec (gzipish: the floor set by
the service machinery itself), a warm SAMC compress (the registry-hit
path every steady-state request takes), and the ``stats`` endpoint.
Each benchmark talks to one in-process daemon over a real socket.
"""

import pytest

from repro.service import ServerThread, ServiceClient, ServiceConfig
from repro.workloads.suite import generate_benchmark


@pytest.fixture(scope="module")
def code() -> bytes:
    return generate_benchmark("compress", "mips", scale=0.3, seed=1).code


@pytest.fixture(scope="module")
def service():
    with ServerThread(ServiceConfig(port=0)) as address:
        yield address


@pytest.fixture(scope="module")
def client(service):
    with ServiceClient(*service) as c:
        yield c


@pytest.mark.benchmark(group="service-roundtrip")
def test_gzipish_roundtrip_latency(benchmark, client, code):
    benchmark.extra_info["bytes"] = len(code)
    blob = benchmark(client.compress, "gzipish", code)
    assert blob


@pytest.mark.benchmark(group="service-roundtrip")
def test_samc_warm_compress_latency(benchmark, client, code):
    # First call trains and fills the registry; the timed calls are
    # all registry hits — the steady-state service path.
    client.compress("samc-bytes", code)
    benchmark.extra_info["bytes"] = len(code)
    blob = benchmark(client.compress, "samc-bytes", code)
    assert blob


@pytest.mark.benchmark(group="service-roundtrip")
def test_samc_decompress_latency(benchmark, client, code):
    blob = client.compress("samc-bytes", code)
    benchmark.extra_info["bytes"] = len(code)
    assert benchmark(client.decompress, "samc-bytes", blob) == code


@pytest.mark.benchmark(group="service-roundtrip")
def test_stats_endpoint_latency(benchmark, client):
    doc = benchmark(client.stats)
    assert doc["schema_version"] == 1
