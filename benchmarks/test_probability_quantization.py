"""tab-quant — Section 3: power-of-two probability constraint.

"To avoid the multiplication in the midpoint calculation unit we can
constrain the probability of the less probable symbol to the nearest
integral power of 1/2 … the worst-case efficiency is about 95%."
We measure the payload cost of the shift-only decoder against the
full-precision coder and check it stays within the Witten et al. band.
"""

import pytest

from benchmarks.conftest import publish
from repro.analysis.tables import format_mapping
from repro.core.samc import SamcCodec
from repro.core.samc.codec import PROBABILITY_BITS

SUBSET = ("compress", "gcc", "mgrid", "xlisp")


def _sweep(mips_suite):
    results = {}
    for mode in ("full16", "full", "pow2"):
        codec = SamcCodec.for_mips(probability_mode=mode)
        payloads = []
        model_bytes = 0
        for name in SUBSET:
            image = codec.compress(mips_suite[name])
            payloads.append(image.payload_ratio)
            model_bytes = image.model_bytes
        results[f"{mode} payload"] = sum(payloads) / len(payloads)
        results[f"{mode} model bytes"] = model_bytes
    return results


@pytest.mark.benchmark(group="tab-quant")
def test_probability_quantization(benchmark, mips_suite, results_dir):
    results = benchmark.pedantic(_sweep, args=(mips_suite,),
                                 rounds=1, iterations=1)
    publish(results_dir, "tab_quant",
            format_mapping(results,
                           title="Probability quantisation (shift-only decoder)"))

    full16 = results["full16 payload"]
    full8 = results["full payload"]
    pow2 = results["pow2 payload"]
    # 8-bit storage costs almost nothing relative to 16-bit.
    assert full8 <= full16 * 1.02
    # The power-of-two constraint costs a bounded few percent (Witten's
    # ~95% worst-case efficiency; typical loss is smaller).
    assert pow2 <= full16 * 1.10
    assert pow2 >= full16 - 0.01  # it should not *win*
    # Storage ordering mirrors the stored bits per probability.
    assert (PROBABILITY_BITS["pow2"] < PROBABILITY_BITS["full"]
            < PROBABILITY_BITS["full16"])
    assert (results["pow2 model bytes"] < results["full model bytes"]
            < results["full16 model bytes"])
