"""Figure 8 — compression ratios on Pentium Pro (x86), 18 benchmarks.

Same series as Figure 7 on the CISC target.  The paper's finding: file
compression gains ground on x86, SAMC loses its stream subdivision (and
with it most of its edge), SADC stays ahead of SAMC but further from
gzip than on MIPS.
"""

import pytest

from benchmarks.conftest import publish
from repro.analysis.experiments import SuiteRow, average_ratios, compression_ratio
from repro.analysis.tables import format_suite

ALGORITHMS = ("compress", "gzip", "SAMC", "SADC")


def _figure8(x86_suite):
    rows = []
    for name, code in x86_suite.items():
        row = SuiteRow(benchmark=name, size_bytes=len(code))
        for algorithm in ALGORITHMS:
            row.ratios[algorithm] = compression_ratio(code, algorithm, "x86")
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="fig8")
def test_fig8_x86_compression_ratios(benchmark, x86_suite, mips_suite,
                                     results_dir):
    rows = benchmark.pedantic(_figure8, args=(x86_suite,),
                              rounds=1, iterations=1)
    publish(results_dir, "fig8_x86",
            format_suite(rows, title="Figure 8 — Pentium Pro compression ratios"))

    averages = average_ratios(rows)
    assert all(ratio < 1.0 for ratio in averages.values())
    assert averages["gzip"] < averages["SADC"] < averages["SAMC"]

    # Cross-figure shape: SAMC is *worse* on x86 than on MIPS (no stream
    # subdivision on variable-length instructions), while gzip holds or
    # improves — exactly the Section 5 discussion.
    mips_samc = sum(
        compression_ratio(code, "SAMC", "mips") for code in mips_suite.values()
    ) / len(mips_suite)
    assert averages["SAMC"] > mips_samc
