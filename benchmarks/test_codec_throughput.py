"""Codec throughput microbenchmarks (timed by pytest-benchmark).

Not a paper table — engineering numbers for the library itself:
compression and decompression speed of each block-oriented codec on a
fixed mid-size program.  These run multiple rounds (real timing).
"""

import pytest

from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.baselines.gzipish import gzipish_compress
from repro.baselines.lzw import lzw_compress
from repro.core.sadc import MipsSadcCodec
from repro.core.samc import SamcCodec
from repro.workloads.suite import generate_benchmark


@pytest.fixture(scope="module")
def code() -> bytes:
    return generate_benchmark("ijpeg", "mips", scale=0.5, seed=1).code


@pytest.mark.benchmark(group="throughput-compress")
def test_samc_compress_throughput(benchmark, code):
    codec = SamcCodec.for_mips()
    image = benchmark(codec.compress, code)
    assert image.payload_bytes > 0


@pytest.mark.benchmark(group="throughput-compress")
def test_sadc_compress_throughput(benchmark, code):
    codec = MipsSadcCodec(max_cycles=16)
    image = benchmark(codec.compress, code)
    assert image.payload_bytes > 0


@pytest.mark.benchmark(group="throughput-compress")
def test_byte_huffman_compress_throughput(benchmark, code):
    codec = ByteHuffmanCodec()
    image = benchmark(codec.compress, code)
    assert image.payload_bytes > 0


@pytest.mark.benchmark(group="throughput-compress")
def test_lzw_compress_throughput(benchmark, code):
    payload = benchmark(lzw_compress, code)
    assert payload


@pytest.mark.benchmark(group="throughput-compress")
def test_gzipish_compress_throughput(benchmark, code):
    payload = benchmark(gzipish_compress, code)
    assert payload


@pytest.mark.benchmark(group="throughput-decompress")
def test_samc_block_decompress_throughput(benchmark, code):
    codec = SamcCodec.for_mips()
    image = codec.compress(code)

    def refill():
        return codec.decompress_block(image, 3)

    block = benchmark(refill)
    assert block == code[96:128]


@pytest.mark.benchmark(group="throughput-decompress")
def test_sadc_block_decompress_throughput(benchmark, code):
    codec = MipsSadcCodec(max_cycles=16)
    image = codec.compress(code)

    def refill():
        return codec.decompress_block(image, 3)

    block = benchmark(refill)
    assert block == code[96:128]


@pytest.mark.benchmark(group="throughput-decompress")
def test_byte_huffman_block_decompress_throughput(benchmark, code):
    codec = ByteHuffmanCodec()
    image = codec.compress(code)

    def refill():
        return codec.decompress_block(image, 3)

    block = benchmark(refill)
    assert block == code[96:128]
