"""Codec and pipeline throughput microbenchmarks (pytest-benchmark).

Not a paper table — engineering numbers for the library itself: the raw
compression/decompression speed of each block-oriented codec on a fixed
mid-size program, plus the experiment pipeline's overheads — a cold
sweep (every job recompressed), a warm sweep (pure cache-hit path), and
the process-pool dispatch cost.  These run multiple rounds (real
timing).
"""

import pytest

from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.baselines.gzipish import gzipish_compress
from repro.baselines.lzw import lzw_compress
from repro.core.sadc import MipsSadcCodec
from repro.core.samc import SamcCodec
from repro.pipeline import ExperimentJob, NullCache, ResultCache, run_pipeline
from repro.workloads.suite import generate_benchmark


@pytest.fixture(scope="module")
def code() -> bytes:
    return generate_benchmark("ijpeg", "mips", scale=0.5, seed=1).code


@pytest.mark.benchmark(group="throughput-compress")
def test_samc_compress_throughput(benchmark, code):
    codec = SamcCodec.for_mips()
    benchmark.extra_info["bytes"] = len(code)
    image = benchmark(codec.compress, code)
    assert image.payload_bytes > 0


@pytest.mark.benchmark(group="throughput-compress")
def test_sadc_compress_throughput(benchmark, code):
    codec = MipsSadcCodec(max_cycles=16)
    benchmark.extra_info["bytes"] = len(code)
    image = benchmark(codec.compress, code)
    assert image.payload_bytes > 0


@pytest.mark.benchmark(group="throughput-compress")
def test_byte_huffman_compress_throughput(benchmark, code):
    codec = ByteHuffmanCodec()
    benchmark.extra_info["bytes"] = len(code)
    image = benchmark(codec.compress, code)
    assert image.payload_bytes > 0


@pytest.mark.benchmark(group="throughput-compress")
def test_lzw_compress_throughput(benchmark, code):
    benchmark.extra_info["bytes"] = len(code)
    payload = benchmark(lzw_compress, code)
    assert payload


@pytest.mark.benchmark(group="throughput-compress")
def test_gzipish_compress_throughput(benchmark, code):
    benchmark.extra_info["bytes"] = len(code)
    payload = benchmark(gzipish_compress, code)
    assert payload


@pytest.mark.benchmark(group="throughput-decompress")
def test_samc_block_decompress_throughput(benchmark, code):
    codec = SamcCodec.for_mips()
    image = codec.compress(code)

    def refill():
        return codec.decompress_block(image, 3)

    benchmark.extra_info["bytes"] = 32  # one cache block per refill
    block = benchmark(refill)
    assert block == code[96:128]


@pytest.mark.benchmark(group="throughput-decompress")
def test_sadc_block_decompress_throughput(benchmark, code):
    codec = MipsSadcCodec(max_cycles=16)
    image = codec.compress(code)

    def refill():
        return codec.decompress_block(image, 3)

    benchmark.extra_info["bytes"] = 32  # one cache block per refill
    block = benchmark(refill)
    assert block == code[96:128]


@pytest.mark.benchmark(group="throughput-decompress")
def test_byte_huffman_block_decompress_throughput(benchmark, code):
    codec = ByteHuffmanCodec()
    image = codec.compress(code)

    def refill():
        return codec.decompress_block(image, 3)

    benchmark.extra_info["bytes"] = 32  # one cache block per refill
    block = benchmark(refill)
    assert block == code[96:128]


# ---------------------------------------------------------------------------
# Pipeline overheads: cold sweep, warm (cached) sweep, pool dispatch.

_PIPELINE_JOBS = [
    ExperimentJob(benchmark, "mips", algorithm, scale=0.2, seed=1)
    for benchmark in ("compress", "xlisp")
    for algorithm in ("compress", "huffman")
]


@pytest.mark.benchmark(group="throughput-pipeline")
def test_pipeline_cold_sweep_throughput(benchmark):
    """Uncached serial sweep: pure codec time plus runner bookkeeping."""
    def cold():
        return run_pipeline(_PIPELINE_JOBS, max_workers=1, cache=NullCache())

    report = benchmark.pedantic(cold, rounds=3)
    assert report.recompressions == len(_PIPELINE_JOBS)


@pytest.mark.benchmark(group="throughput-pipeline")
def test_pipeline_warm_cache_throughput(benchmark):
    """Fully cached sweep: fingerprint + lookup cost, zero recompressions."""
    cache = ResultCache()
    run_pipeline(_PIPELINE_JOBS, max_workers=1, cache=cache)

    def warm():
        return run_pipeline(_PIPELINE_JOBS, max_workers=1, cache=cache)

    report = benchmark(warm)
    assert report.hits == len(_PIPELINE_JOBS)
    assert report.recompressions == 0


@pytest.mark.benchmark(group="throughput-pipeline")
def test_pipeline_pool_dispatch_throughput(benchmark):
    """Process-pool sweep: measures fan-out/pickling overhead vs serial."""
    def pooled():
        return run_pipeline(_PIPELINE_JOBS, max_workers=2, cache=NullCache())

    report = benchmark.pedantic(pooled, rounds=2)
    assert report.recompressions == len(_PIPELINE_JOBS)
