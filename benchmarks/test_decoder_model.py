"""tab-hw — decoder hardware model (Figures 5 and 6).

First-order gate and storage estimates for both decompressors, plus a
functional check that the parallel nibble decoder really decodes 4 bits
per midpoint-table evaluation (the paper's throughput claim).
"""

import random

import pytest

from benchmarks.conftest import publish
from repro.analysis.tables import format_mapping
from repro.core.sadc import MipsSadcCodec
from repro.core.samc import SamcCodec
from repro.hw.cost import SadcDecoderCost, SamcDecoderCost, compare_decoders
from repro.hw.midpoint import PROB_ONE, parallel_decode, serial_decode


def _build(code):
    samc_image = SamcCodec.for_mips().compress(code)
    sadc_image = MipsSadcCodec().compress(code)
    samc_model = samc_image.metadata["model"]
    samc_cost = SamcDecoderCost(
        probability_count=samc_model.probability_count(),
        probability_bits=8,
    )
    samc_shift = SamcDecoderCost(
        probability_count=samc_model.probability_count(),
        probability_bits=5,
        multiplier_free=True,
    )
    sadc_cost = SadcDecoderCost(
        dictionary_bits=sadc_image.metadata["dictionary"].storage_bits,
    )
    table = compare_decoders(samc_cost, sadc_cost)
    flat = {}
    for algorithm, row in table.items():
        for key, value in row.items():
            flat[f"{algorithm} {key}"] = value
    flat["SAMC shift-only logic gates"] = samc_shift.logic_gates
    flat["SAMC full logic gates"] = samc_cost.logic_gates
    return flat


@pytest.mark.benchmark(group="tab-hw")
def test_decoder_cost_model(benchmark, mips_gcc, results_dir):
    results = benchmark.pedantic(_build, args=(mips_gcc,),
                                 rounds=1, iterations=1)
    publish(results_dir, "tab_hw",
            format_mapping(results, title="Decoder hardware estimates"))

    # The multiplier-free datapath is the paper's stated simplification.
    assert (results["SAMC shift-only logic gates"]
            < results["SAMC full logic gates"])
    # Both decoders are small (order 10^4-10^5 gates, embedded-friendly).
    assert results["SAMC total_gates"] < 500_000
    assert results["SADC total_gates"] < 500_000
    # SADC refills a block in fewer cycles than bit-serial-ish SAMC.
    assert (results["SADC cycles_per_32B_block"]
            < results["SAMC cycles_per_32B_block"])


@pytest.mark.benchmark(group="tab-hw")
def test_parallel_decoder_throughput(benchmark):
    """4 decoded bits per midpoint-table evaluation, exactly."""
    rng = random.Random(42)
    table = {}

    def prob(prefix):
        if prefix not in table:
            table[prefix] = rng.randrange(1, PROB_ONE)
        return table[prefix]

    values = [rng.randrange(1 << 24) for _ in range(200)]

    def run():
        return [parallel_decode(v, 4, prob) for v in values]

    outputs = benchmark(run)
    for val, out in zip(values, outputs):
        assert out == serial_decode(val, 4, prob)
        assert len(out[0]) == 4
