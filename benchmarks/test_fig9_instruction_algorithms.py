"""Figure 9 — average ratios of instruction-compression algorithms.

Byte-Huffman (Kozuch & Wolfe) vs SAMC vs SADC, averaged over the suite,
for both MIPS and x86.  Paper shape: on MIPS both new schemes beat
Huffman substantially; on Pentium the gap narrows, with SAMC only
slightly ahead of Huffman; SADC wins everywhere.
"""

import pytest

from benchmarks.conftest import publish
from repro.analysis.experiments import compression_ratio
from repro.analysis.tables import format_averages

ALGORITHMS = ("huffman", "SAMC", "SADC")


def _figure9(mips_suite, x86_suite):
    averages = {}
    for isa, suite in (("mips", mips_suite), ("x86", x86_suite)):
        averages[isa] = {
            algorithm: sum(
                compression_ratio(code, algorithm, isa)
                for code in suite.values()
            ) / len(suite)
            for algorithm in ALGORITHMS
        }
    return averages


@pytest.mark.benchmark(group="fig9")
def test_fig9_average_ratios(benchmark, mips_suite, x86_suite, results_dir):
    averages = benchmark.pedantic(
        _figure9, args=(mips_suite, x86_suite), rounds=1, iterations=1
    )
    publish(results_dir, "fig9_averages",
            format_averages(averages,
                            title="Figure 9 — instruction compression averages"))

    mips, x86 = averages["mips"], averages["x86"]
    # MIPS: SAMC and SADC substantially better than byte-Huffman.
    assert mips["SAMC"] < mips["huffman"] - 0.03
    assert mips["SADC"] < mips["huffman"] - 0.08
    # x86: the SAMC-vs-Huffman difference "is not as big".
    assert x86["SAMC"] < x86["huffman"] + 0.02
    assert (mips["huffman"] - mips["SAMC"]) > (x86["huffman"] - x86["SAMC"])
    # SADC performs much better than SAMC on both targets.
    assert x86["SADC"] < x86["SAMC"]
    assert mips["SADC"] < mips["SAMC"]
