"""Integrity-framing overhead guard: the container must stay under 2%.

The resilience frame (``repro.resilience.frame``) costs a fixed
:data:`FRAME_OVERHEAD` bytes per framed object.  Archives are framed
whole, so on any realistically sized image the overhead is a fraction
of a percent — this suite pins the < 2% budget across the benchmark
programs and both ISAs, and asserts byte-identity of everything under
the container (turning framing on must never change the codec bytes).

Runs under ``--benchmark-disable`` in CI like the other benchmark
groups: every assertion is on sizes and bytes, never timings.
"""

from __future__ import annotations

import pytest

from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.core.sadc import sadc_compress
from repro.core.samc import SamcCodec
from repro.core.serialize import serialize_image
from repro.resilience import FRAME_OVERHEAD, unwrap_frame
from repro.workloads.suite import generate_benchmark

#: Maximum allowed framed/unframed size ratio.
OVERHEAD_BUDGET = 1.02

BENCHMARKS = ("compress", "gcc", "ijpeg")


def _images(isa):
    for benchmark in BENCHMARKS:
        code = generate_benchmark(benchmark, isa, scale=0.3, seed=1).code
        if isa == "mips":
            yield benchmark, SamcCodec.for_mips().compress(code)
        else:
            yield benchmark, SamcCodec.for_bytes().compress(code)
        yield benchmark, sadc_compress(code, isa=isa)
        yield benchmark, ByteHuffmanCodec().compress(code)


@pytest.mark.parametrize("isa", ["mips", "x86"])
def test_suite_overhead_under_budget(isa):
    total_raw = 0
    total_framed = 0
    for benchmark, image in _images(isa):
        raw = serialize_image(image, framed=False)
        framed = serialize_image(image, framed=True)
        assert len(framed) == len(raw) + FRAME_OVERHEAD
        assert unwrap_frame(framed) == raw  # container, not a transform
        per_image = len(framed) / len(raw)
        assert per_image <= OVERHEAD_BUDGET, (
            f"{benchmark}/{image.algorithm} framed overhead "
            f"{per_image:.4f} exceeds {OVERHEAD_BUDGET}"
        )
        total_raw += len(raw)
        total_framed += len(framed)
    assert total_framed / total_raw <= OVERHEAD_BUDGET


def test_smallest_archive_still_within_budget():
    # The worst case is the smallest archive: fixed 14 bytes against the
    # shortest serialised image in the suite.  Even a tiny program's
    # model tables dwarf the container.
    code = generate_benchmark("compress", "mips", scale=0.05, seed=1).code
    image = SamcCodec.for_mips().compress(code)
    raw = serialize_image(image, framed=False)
    assert FRAME_OVERHEAD / len(raw) <= OVERHEAD_BUDGET - 1.0
