"""tab-positional — quantifying the paper's critique of byte-Huffman.

"8-bit symbols have been used instead of 32-bit symbols … all 4 bytes
within the same 32-bit word are encoded using the same table.  Since
instructions have different fields which have different statistical
characteristics such a choice increases the entropy of the source
significantly."  We measure the ladder: plain byte-Huffman (one table)
→ positional Huffman (table per byte position) → SAMC (per-stream
Markov models), each step recovering more of that structure.
"""

import pytest

from benchmarks.conftest import publish
from repro.analysis.tables import format_mapping
from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.baselines.positional_huffman import PositionalHuffmanCodec
from repro.core.samc import SamcCodec

SUBSET = ("compress", "gcc", "mgrid", "vortex")


def _sweep(mips_suite):
    results = {}
    schemes = {
        "plain huffman": lambda code: ByteHuffmanCodec().compress(code),
        "positional huffman": lambda code: PositionalHuffmanCodec().compress(code),
        "SAMC": lambda code: SamcCodec.for_mips().compress(code),
    }
    for label, compress in schemes.items():
        payloads = [
            compress(mips_suite[name]).payload_ratio for name in SUBSET
        ]
        results[f"{label} payload"] = sum(payloads) / len(payloads)
    return results


@pytest.mark.benchmark(group="tab-positional")
def test_positional_table_ladder(benchmark, mips_suite, results_dir):
    results = benchmark.pedantic(_sweep, args=(mips_suite,),
                                 rounds=1, iterations=1)
    publish(results_dir, "tab_positional",
            format_mapping(results,
                           title="One table -> per-position tables -> "
                                 "Markov streams"))

    assert (results["positional huffman payload"]
            < results["plain huffman payload"] - 0.02)
    assert (results["SAMC payload"]
            < results["positional huffman payload"])
