"""Shared fixtures for the benchmark harness.

Every figure/table benchmark runs the *real* experiment once
(``benchmark.pedantic(..., rounds=1)``) at ``REPRO_BENCH_SCALE`` (default
2.0 — large enough for model tables to amortise, small enough to finish
in minutes) and prints the regenerated series.  Results are also written
to ``benchmarks/results/`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

import pytest

from repro.workloads.profiles import BENCHMARK_NAMES
from repro.workloads.suite import generate_benchmark

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def mips_suite() -> Dict[str, bytes]:
    """The full 18-benchmark MIPS suite at bench scale."""
    return {
        name: generate_benchmark(name, "mips", BENCH_SCALE, BENCH_SEED).code
        for name in BENCHMARK_NAMES
    }


@pytest.fixture(scope="session")
def x86_suite() -> Dict[str, bytes]:
    """The full 18-benchmark x86 suite at bench scale."""
    return {
        name: generate_benchmark(name, "x86", BENCH_SCALE, BENCH_SEED).code
        for name in BENCHMARK_NAMES
    }


@pytest.fixture(scope="session")
def mips_gcc() -> bytes:
    """One mid/large MIPS program for single-program sweeps."""
    return generate_benchmark("gcc", "mips", BENCH_SCALE, BENCH_SEED).code


def publish(results_dir: Path, name: str, text: str) -> None:
    """Print a regenerated table and save it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
