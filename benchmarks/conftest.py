"""Shared fixtures for the benchmark harness.

Every figure/table benchmark runs the *real* experiment once
(``benchmark.pedantic(..., rounds=1)``) at ``REPRO_BENCH_SCALE`` (default
2.0 — large enough for model tables to amortise, small enough to finish
in minutes) and prints the regenerated series.  Results are also written
to ``benchmarks/results/`` so EXPERIMENTS.md can cite them.

Timed runs additionally emit ``benchmarks/results/BENCH_codec.json``:
per-benchmark median latency (and ns/byte where the test records its
input size via ``benchmark.extra_info["bytes"]``), so the performance
trajectory is machine-readable across PRs.  Compare two snapshots with
``python -m repro bench-diff old.json new.json``, which flags >15%
regressions.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

import pytest

from repro.fastpath import fastpath_enabled

from repro.workloads.profiles import BENCHMARK_NAMES
from repro.workloads.suite import generate_benchmark

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def mips_suite() -> Dict[str, bytes]:
    """The full 18-benchmark MIPS suite at bench scale."""
    return {
        name: generate_benchmark(name, "mips", BENCH_SCALE, BENCH_SEED).code
        for name in BENCHMARK_NAMES
    }


@pytest.fixture(scope="session")
def x86_suite() -> Dict[str, bytes]:
    """The full 18-benchmark x86 suite at bench scale."""
    return {
        name: generate_benchmark(name, "x86", BENCH_SCALE, BENCH_SEED).code
        for name in BENCHMARK_NAMES
    }


@pytest.fixture(scope="session")
def mips_gcc() -> bytes:
    """One mid/large MIPS program for single-program sweeps."""
    return generate_benchmark("gcc", "mips", BENCH_SCALE, BENCH_SEED).code


def publish(results_dir: Path, name: str, text: str) -> None:
    """Print a regenerated table and save it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


BENCH_JSON = "BENCH_codec.json"


def pytest_sessionfinish(session, exitstatus) -> None:
    """Dump per-benchmark medians to ``results/BENCH_codec.json``.

    Only fires when pytest-benchmark actually timed something (it is a
    no-op under ``--benchmark-disable``, so CI smoke runs never write
    bogus zero timings).  ``ns_per_byte`` is included whenever the test
    declared its input size through ``benchmark.extra_info["bytes"]``.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    results: Dict[str, Dict] = {}
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None or getattr(stats, "data", None) in (None, []):
            continue
        median_ns = stats.median * 1e9
        entry = {
            "group": bench.group,
            "median_ns": median_ns,
            "rounds": stats.rounds,
        }
        nbytes = bench.extra_info.get("bytes")
        if nbytes:
            entry["bytes"] = nbytes
            entry["ns_per_byte"] = median_ns / nbytes
        results[bench.fullname] = entry
    if not results:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": 1,
        "fastpath": fastpath_enabled(),
        "bench_scale": BENCH_SCALE,
        "results": results,
    }
    (RESULTS_DIR / BENCH_JSON).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
