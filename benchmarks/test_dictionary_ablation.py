"""tab-dict — Section 4: dictionary design choices.

Sweeps (a) the dictionary capacity (the paper fixes 256 "to keep the
opcode value in one byte"), and (b) the candidate classes — opcode
groups vs register binding vs immediate binding — to show each gain
heuristic earns its keep.
"""

import pytest

from benchmarks.conftest import publish
from repro.analysis.tables import format_mapping
from repro.core.sadc import MipsSadcCodec

CAPACITIES = (64, 128, 256)


def _sweep(code):
    results = {}
    for capacity in CAPACITIES:
        image = MipsSadcCodec(max_entries=capacity).compress(code)
        results[f"dict={capacity} payload"] = image.payload_ratio
        results[f"dict={capacity} entries"] = len(image.metadata["dictionary"])
    variants = {
        "full": MipsSadcCodec(),
        "no groups": MipsSadcCodec(enable_groups=False),
        "no reg binding": MipsSadcCodec(enable_reg_binding=False),
        "no imm binding": MipsSadcCodec(enable_imm_binding=False),
        "singles only": MipsSadcCodec(enable_groups=False,
                                      enable_reg_binding=False,
                                      enable_imm_binding=False),
    }
    for label, codec in variants.items():
        results[f"{label} payload"] = codec.compress(code).payload_ratio
    return results


@pytest.mark.benchmark(group="tab-dict")
def test_dictionary_ablation(benchmark, mips_gcc, results_dir):
    results = benchmark.pedantic(_sweep, args=(mips_gcc,),
                                 rounds=1, iterations=1)
    publish(results_dir, "tab_dict",
            format_mapping(results, title="SADC dictionary ablation (gcc)"))

    # Bigger dictionaries never hurt payload.
    assert (results["dict=256 payload"]
            <= results["dict=128 payload"] + 0.005)
    assert (results["dict=128 payload"]
            <= results["dict=64 payload"] + 0.005)
    # Every candidate class contributes: ablating any of them cannot beat
    # the full configuration, and singles-only is clearly worst.
    full = results["full payload"]
    assert results["no groups payload"] >= full - 0.005
    assert results["no reg binding payload"] >= full - 0.005
    assert results["no imm binding payload"] >= full - 0.005
    assert results["singles only payload"] > full + 0.01
