"""tab-memsys — the architecture trade: slowdown vs I-cache hit ratio.

Sections 1-2 argue decompress-on-miss performance "should depend on the
instruction cache hit ratio".  We sweep cache sizes (which sweeps the
hit ratio) and record the slowdown of SAMC- and SADC-compressed systems
against an uncompressed baseline, plus CLB effectiveness.
"""

import pytest

from benchmarks.conftest import publish
from repro.analysis.tables import format_mapping
from repro.core.sadc import MipsSadcCodec
from repro.core.samc import SamcCodec
from repro.memory.system import CompressedMemorySystem
from repro.memory.trace import generate_trace

CACHE_SIZES = (512, 1024, 4096, 16384)
TRACE_LENGTH = 120_000


def _sweep(code):
    samc_image = SamcCodec.for_mips().compress(code)
    sadc_image = MipsSadcCodec().compress(code)
    trace = list(generate_trace(len(code), TRACE_LENGTH, seed=11))
    results = {}
    for cache_size in CACHE_SIZES:
        base = CompressedMemorySystem(len(code), cache_size=cache_size)
        base_result = base.run(trace)
        results[f"{cache_size}B hit ratio"] = base_result.cache.hit_ratio
        for label, image in (("SAMC", samc_image), ("SADC", sadc_image)):
            system = CompressedMemorySystem(
                len(code), image=image, cache_size=cache_size
            )
            run = system.run(trace)
            results[f"{cache_size}B {label} slowdown"] = run.slowdown_vs(
                base_result
            )
            if cache_size == CACHE_SIZES[0]:
                results[f"{label} CLB hit ratio"] = run.clb.hit_ratio
    return results


@pytest.mark.benchmark(group="tab-memsys")
def test_memory_system_slowdown(benchmark, mips_gcc, results_dir):
    results = benchmark.pedantic(_sweep, args=(mips_gcc,),
                                 rounds=1, iterations=1)
    publish(results_dir, "tab_memsys",
            format_mapping(results,
                           title="Decompress-on-miss slowdown vs cache size (gcc)"))

    # Hit ratio rises with cache size; slowdown falls towards 1.0.
    hits = [results[f"{c}B hit ratio"] for c in CACHE_SIZES]
    assert hits == sorted(hits)
    # Asymptotic slowdowns: SADC's 2-cycle/instruction decoder is nearly
    # free; SAMC's 4-bit/cycle serial decoder keeps a visible tax even at
    # >99% hit ratios (the paper's motivation for the parallel decoder).
    limits = {"SAMC": 1.45, "SADC": 1.2}
    for label in ("SAMC", "SADC"):
        slowdowns = [results[f"{c}B {label} slowdown"] for c in CACHE_SIZES]
        assert all(s >= 1.0 for s in slowdowns)
        assert slowdowns[-1] < slowdowns[0]
        assert slowdowns[-1] < limits[label]
    # SADC's simpler decoder refills faster than SAMC's bit-serial one.
    assert (results[f"{CACHE_SIZES[0]}B SADC slowdown"]
            <= results[f"{CACHE_SIZES[0]}B SAMC slowdown"])
    # The CLB keeps most LAT lookups off main memory.
    assert results["SAMC CLB hit ratio"] > 0.5
