"""tab-markov — Figure 4: connected vs independent Markov trees.

"Compression performance can be improved by connecting the Markov trees
of adjacent streams."  We sweep the connection order on a suite subset
and check payload ratios improve monotonically (while model storage
doubles per extra bit — the trade the paper is making).
"""

import pytest

from benchmarks.conftest import publish
from repro.analysis.tables import format_mapping
from repro.core.samc import SamcCodec

CONNECT_BITS = (0, 1, 2)
SUBSET = ("compress", "gcc", "swim", "vortex")


def _sweep(mips_suite):
    results = {}
    for bits in CONNECT_BITS:
        codec = SamcCodec.for_mips(connect_bits=bits)
        payloads = []
        model_bytes = 0
        for name in SUBSET:
            image = codec.compress(mips_suite[name])
            payloads.append(image.payload_ratio)
            model_bytes = image.model_bytes
        results[f"connect={bits} payload"] = sum(payloads) / len(payloads)
        results[f"connect={bits} model bytes"] = model_bytes
    return results


@pytest.mark.benchmark(group="tab-markov")
def test_markov_tree_connection(benchmark, mips_suite, results_dir):
    results = benchmark.pedantic(_sweep, args=(mips_suite,),
                                 rounds=1, iterations=1)
    publish(results_dir, "tab_markov",
            format_mapping(results,
                           title="Connected Markov trees (Figure 4 ablation)"))

    # Payload improves with connection order…
    assert (results["connect=1 payload"] < results["connect=0 payload"])
    assert (results["connect=2 payload"] <= results["connect=1 payload"] + 0.005)
    # …while the probability memory doubles per context bit.
    assert results["connect=1 model bytes"] > 1.9 * results["connect=0 model bytes"] - 64
    assert results["connect=2 model bytes"] > 1.9 * results["connect=1 model bytes"] - 64
