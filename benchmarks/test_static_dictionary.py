"""tab-static — Section 4: static vs semiadaptive dictionaries.

"Static dictionaries are built once and used for all programs, while
semiadaptive are built for each subject program.  Clearly a semiadaptive
dictionary will achieve better compression for a given program as it is
specifically designed for that program."  We train one static dictionary
on half the suite, evaluate on held-out benchmarks, and quantify the
semiadaptive advantage.
"""

import pytest

from benchmarks.conftest import publish
from repro.analysis.tables import format_mapping
from repro.core.sadc import MipsSadcCodec

TRAIN = ("applu", "gcc", "ijpeg", "swim")
EVALUATE = ("compress", "go", "mgrid", "vortex")


def _sweep(mips_suite):
    codec = MipsSadcCodec()
    static_dictionary = codec.build_static_dictionary(
        [mips_suite[name] for name in TRAIN]
    )
    results = {"static dictionary entries": len(static_dictionary)}
    semiadaptive = []
    static = []
    for name in EVALUATE:
        code = mips_suite[name]
        semiadaptive.append(codec.compress(code).payload_ratio)
        static.append(
            codec.compress(code, dictionary=static_dictionary).payload_ratio
        )
        results[f"{name} semiadaptive"] = semiadaptive[-1]
        results[f"{name} static"] = static[-1]
    results["mean semiadaptive"] = sum(semiadaptive) / len(semiadaptive)
    results["mean static"] = sum(static) / len(static)
    return results


@pytest.mark.benchmark(group="tab-static")
def test_static_vs_semiadaptive(benchmark, mips_suite, results_dir):
    results = benchmark.pedantic(_sweep, args=(mips_suite,),
                                 rounds=1, iterations=1)
    publish(results_dir, "tab_static",
            format_mapping(results,
                           title="Static vs semiadaptive dictionaries "
                                 "(held-out benchmarks)"))

    # The paper's claim: semiadaptive wins on every subject program.
    for name in EVALUATE:
        assert results[f"{name} semiadaptive"] <= results[f"{name} static"]
    assert results["mean semiadaptive"] < results["mean static"] - 0.01
