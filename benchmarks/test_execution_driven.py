"""tab-exec — execution-driven validation of the whole pipeline.

Not a paper table (the paper stops at block diagrams): each assembly
kernel executes with every instruction fetch served through the
compressed memory system — LAT lookup, CLB, real block decompression —
and must produce bit-identical results, while we meter fetch cycles per
instruction for each scheme.
"""

import pytest

from benchmarks.conftest import publish
from repro.analysis.tables import format_mapping
from repro.core.sadc import MipsSadcCodec
from repro.core.samc import SamcCodec
from repro.isa.mips.interp import MipsMachine
from repro.memory.fetchsim import run_compressed
from repro.workloads.kernels import KERNELS


def _sweep():
    results = {}
    for kernel in KERNELS:
        code = kernel.code()
        for label, image in (
            ("SAMC", SamcCodec.for_mips().compress(code)),
            ("SADC", MipsSadcCodec().compress(code)),
        ):
            machine = MipsMachine()
            machine.load_code(code)
            kernel.setup(machine)
            run = run_compressed(image, machine, cache_size=256)
            if not kernel.check(machine):
                raise AssertionError(
                    f"{kernel.name} mis-executed through {label}"
                )
            results[f"{kernel.name} {label} cyc/instr"] = (
                run.fetch_cycles_per_instruction
            )
    return results


@pytest.mark.benchmark(group="tab-exec")
def test_execution_through_compressed_memory(benchmark, results_dir):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    publish(results_dir, "tab_exec",
            format_mapping(results,
                           title="Execution-driven fetch cost (kernels)"))

    for kernel in KERNELS:
        samc = results[f"{kernel.name} SAMC cyc/instr"]
        sadc = results[f"{kernel.name} SADC cyc/instr"]
        # Fetches cost at least a cycle; SADC's faster decoder never
        # refills slower than SAMC's bit-serial one.
        assert samc >= 1.0 and sadc >= 1.0
        assert sadc <= samc + 1e-9
