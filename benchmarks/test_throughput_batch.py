"""Batch codec engine throughput (pytest-benchmark group ``throughput-batch``).

The tentpole numbers for the vectorised batch engine: decoding every
block of a program as *one* ``decompress_blocks`` call versus the
per-block refill loop, for SAMC (the lockstep range decoder) and
byte-Huffman (the flat-table decoder), plus the vectorised SAMC batch
encoder.  The paired ``*_perblock`` / ``*_batch`` benchmarks share one
image, so their ns/byte ratio is the batch speedup on this machine.

The comparison gate lives in CI: a timed run of this file followed by
``python -m repro bench-diff --group throughput-batch`` against the
committed ``BENCH_baseline.json``.
"""

import os

import pytest

from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.core.samc import SamcCodec

pytestmark = pytest.mark.benchmark(group="throughput-batch")


@pytest.fixture(scope="module")
def code(mips_suite) -> bytes:
    # ~35 KB at the default bench scale: ~1100 cache blocks, far past
    # the vector dispatch threshold.
    return mips_suite["ijpeg"]


@pytest.fixture(scope="module")
def samc_image(code):
    codec = SamcCodec.for_mips()
    return codec, codec.compress(code)


@pytest.fixture(scope="module")
def huffman_image(code):
    codec = ByteHuffmanCodec()
    return codec, codec.compress(code)


def test_samc_decode_perblock(benchmark, samc_image, code):
    codec, image = samc_image
    indices = range(image.block_count())

    def perblock():
        return [codec.decompress_block(image, i) for i in indices]

    benchmark.extra_info["bytes"] = len(code)
    blocks = benchmark(perblock)
    assert b"".join(blocks) == code


def test_samc_decode_batch(benchmark, samc_image, code):
    codec, image = samc_image
    indices = range(image.block_count())

    def batch():
        return codec.decompress_blocks(image, indices)

    benchmark.extra_info["bytes"] = len(code)
    blocks = benchmark(batch)
    assert b"".join(blocks) == code


def test_samc_encode_batch(benchmark, samc_image, code):
    codec, image = samc_image

    def encode():
        return codec.compress_with_model(code, image.metadata["model"])

    benchmark.extra_info["bytes"] = len(code)
    out = benchmark(encode)
    assert out.blocks == image.blocks


def test_byte_huffman_decode_perblock(benchmark, huffman_image, code):
    codec, image = huffman_image
    indices = range(image.block_count())

    def perblock():
        return [codec.decompress_block(image, i) for i in indices]

    benchmark.extra_info["bytes"] = len(code)
    blocks = benchmark(perblock)
    assert b"".join(blocks) == code


def test_byte_huffman_decode_batch(benchmark, huffman_image, code):
    codec, image = huffman_image
    indices = range(image.block_count())

    def batch():
        return codec.decompress_blocks(image, indices)

    benchmark.extra_info["bytes"] = len(code)
    blocks = benchmark(batch)
    assert b"".join(blocks) == code


def test_batch_speedup_target(samc_image, code):
    """The acceptance floor, asserted outside the timing harness: the
    batch path must beat the per-block fastpath by >= 3x on a full-image
    batch.  Guarded by REPRO_BENCH_ASSERT_SPEEDUP so plain test runs
    (shared CI boxes, --benchmark-disable smoke) don't flake on load;
    the benchmarks CI job sets it."""
    if not os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP"):
        pytest.skip("set REPRO_BENCH_ASSERT_SPEEDUP=1 to assert the floor")
    import time

    codec, image = samc_image
    indices = range(image.block_count())
    best_loop = min(
        _timed(lambda: [codec.decompress_block(image, i) for i in indices])
        for _ in range(3)
    )
    best_batch = min(
        _timed(lambda: codec.decompress_blocks(image, indices))
        for _ in range(3)
    )
    speedup = best_loop / best_batch
    print(f"\nsamc batch decode speedup: {speedup:.2f}x "
          f"({best_loop * 1e3:.1f} ms -> {best_batch * 1e3:.1f} ms, "
          f"{image.block_count()} blocks)")
    assert speedup >= 3.0


def _timed(fn) -> float:
    import time

    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
