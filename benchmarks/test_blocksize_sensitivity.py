"""tab-blocksize — Section 5 claim: block size has minimal impact.

"All of our experiments are done assuming a cache block size of 32
bytes.  Different cache block sizes have a minimal impact on the results
presented."  We sweep 16/32/64/128-byte blocks for SAMC and SADC on one
benchmark and check the payload ratios stay within a narrow band (the
per-block coder-flush overhead shrinks as blocks grow, so *some* drift
is expected — it must just stay small).
"""

import pytest

from benchmarks.conftest import publish
from repro.analysis.tables import format_mapping
from repro.core.sadc import MipsSadcCodec
from repro.core.samc import SamcCodec

BLOCK_SIZES = (16, 32, 64, 128)


def _sweep(code):
    results = {}
    for block_size in BLOCK_SIZES:
        samc = SamcCodec.for_mips(block_size=block_size).compress(code)
        sadc = MipsSadcCodec(block_size=block_size).compress(code)
        results[f"SAMC@{block_size}B"] = samc.payload_ratio
        results[f"SADC@{block_size}B"] = sadc.payload_ratio
    return results


@pytest.mark.benchmark(group="tab-blocksize")
def test_blocksize_sensitivity(benchmark, mips_gcc, results_dir):
    results = benchmark.pedantic(_sweep, args=(mips_gcc,),
                                 rounds=1, iterations=1)
    publish(results_dir, "tab_blocksize",
            format_mapping(results,
                           title="Block-size sensitivity (gcc, payload ratio)"))

    for algorithm in ("SAMC", "SADC"):
        ratios = [results[f"{algorithm}@{b}B"] for b in BLOCK_SIZES]
        spread = max(ratios) - min(ratios)
        assert spread < 0.08, f"{algorithm} spread {spread:.3f} not minimal"
        # Larger blocks amortise per-block overhead: monotone or nearly so.
        assert ratios[0] >= ratios[-1] - 0.01
