"""Figure 7 — compression ratios on MIPS, 18 SPEC95 benchmarks.

Regenerates the paper's series: compress (LZW), gzip (LZSS+Huffman),
SAMC, SADC, one bar group per benchmark, ratio = compressed/original.
Shape assertions encode the paper's qualitative findings.
"""

import pytest

from benchmarks.conftest import publish
from repro.analysis.experiments import SuiteRow, average_ratios, compression_ratio
from repro.analysis.tables import format_suite

ALGORITHMS = ("compress", "gzip", "SAMC", "SADC")


def _figure7(mips_suite):
    rows = []
    for name, code in mips_suite.items():
        row = SuiteRow(benchmark=name, size_bytes=len(code))
        for algorithm in ALGORITHMS:
            row.ratios[algorithm] = compression_ratio(code, algorithm, "mips")
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="fig7")
def test_fig7_mips_compression_ratios(benchmark, mips_suite, results_dir):
    rows = benchmark.pedantic(_figure7, args=(mips_suite,),
                              rounds=1, iterations=1)
    publish(results_dir, "fig7_mips",
            format_suite(rows, title="Figure 7 — MIPS compression ratios"))

    averages = average_ratios(rows)
    # Paper shapes: everything compresses; gzip is the file-oriented
    # bound; SADC beats SAMC by several points (4-6% in the paper).
    assert all(ratio < 1.0 for ratio in averages.values())
    assert averages["gzip"] < averages["SADC"] < averages["SAMC"]
    assert averages["SAMC"] - averages["SADC"] > 0.02
    # SAMC sits in UNIX-compress territory on MIPS (the paper's headline
    # comparison); allow a generous band around parity.
    assert abs(averages["SAMC"] - averages["compress"]) < 0.2
    # Per-benchmark: SADC never loses to SAMC by more than noise.
    for row in rows:
        assert row.ratios["SADC"] < row.ratios["SAMC"] + 0.03
